package market

import (
	"math"
	"testing"

	"repro/internal/admission"
	"repro/internal/sim"
	"repro/internal/task"
)

func TestFullPrice(t *testing.T) {
	w := ServerBid{SiteID: "a", ExpectedPrice: 80}
	if got := (FullPrice{}).Price(w, []ServerBid{w, {SiteID: "b", ExpectedPrice: 60}}); got != 80 {
		t.Errorf("FullPrice = %v, want 80", got)
	}
}

func TestSecondPrice(t *testing.T) {
	w := ServerBid{SiteID: "a", TaskID: 1, ExpectedPrice: 80}
	offers := []ServerBid{w,
		{SiteID: "b", TaskID: 1, ExpectedPrice: 60},
		{SiteID: "c", TaskID: 1, ExpectedPrice: 40},
	}
	if got := (SecondPrice{}).Price(w, offers); got != 60 {
		t.Errorf("SecondPrice = %v, want 60 (best competitor)", got)
	}
	// Sole offer: pays own price.
	if got := (SecondPrice{}).Price(w, []ServerBid{w}); got != 80 {
		t.Errorf("sole-offer SecondPrice = %v, want 80", got)
	}
	// Competitor above the winner's own price: capped at own price.
	offers[1].ExpectedPrice = 200
	if got := (SecondPrice{}).Price(w, offers); got != 80 {
		t.Errorf("capped SecondPrice = %v, want 80", got)
	}
}

func TestRebate(t *testing.T) {
	w := ServerBid{ExpectedPrice: 100}
	if got := (Rebate{Fraction: 0.9}).Price(w, nil); got != 90 {
		t.Errorf("Rebate(0.9) = %v, want 90", got)
	}
	if got := (Rebate{Fraction: 0}).Price(w, nil); got != 100 {
		t.Errorf("Rebate(0) should fall back to full price, got %v", got)
	}
}

func TestPricerNames(t *testing.T) {
	for _, p := range []Pricer{FullPrice{}, SecondPrice{}, Rebate{Fraction: 0.5}} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

func TestChargedPrice(t *testing.T) {
	c := Contract{NegotiatedPrice: 60}
	if c.ChargedPrice() != 0 {
		t.Error("unsettled contract should charge 0")
	}
	c.Settled = true
	c.FinalPrice = 100 // delivered more value than negotiated
	if got := c.ChargedPrice(); got != 60 {
		t.Errorf("ChargedPrice = %v, want negotiated 60", got)
	}
	c.FinalPrice = 30 // late delivery
	if got := c.ChargedPrice(); got != 30 {
		t.Errorf("ChargedPrice = %v, want value-limited 30", got)
	}
	c.FinalPrice = -10 // penalty region
	if got := c.ChargedPrice(); got != -10 {
		t.Errorf("ChargedPrice = %v, want penalty -10", got)
	}
}

func TestBrokerAppliesSecondPrice(t *testing.T) {
	// Two idle sites produce two offers with equal expected prices; under
	// SecondPrice the winner charges the competitor's price.
	ex := NewExchange(BestYield{}, exchangeConfigs(2, admission.AcceptAll{}))
	ex.Broker.SetPricer(SecondPrice{})
	tk := task.New(1, 0, 10, 100, 1, math.Inf(1))
	var contract *Contract
	ex.Engine.At(0, func() {
		c, err := ex.Broker.Negotiate(tk)
		if err != nil {
			t.Error(err)
		}
		contract = c
	})
	ex.Engine.Run()

	if contract == nil {
		t.Fatal("no contract")
	}
	if contract.NegotiatedPrice != contract.Server.ExpectedPrice {
		t.Errorf("equal offers: negotiated %v, want %v",
			contract.NegotiatedPrice, contract.Server.ExpectedPrice)
	}
	if contract.ChargedPrice() != contract.NegotiatedPrice {
		t.Errorf("on-time charge %v, want %v", contract.ChargedPrice(), contract.NegotiatedPrice)
	}
}

func TestClientBudgetGating(t *testing.T) {
	ex := NewExchange(BestYield{}, exchangeConfigs(1, admission.AcceptAll{}))
	client := NewClient(ex.Engine, ex.Broker, ClientConfig{
		Name: "u1", Budget: 150, Interval: math.Inf(1),
	})

	cheap := task.New(1, 0, 10, 100, 1, math.Inf(1))
	pricey := task.New(2, 0, 10, 100, 1, math.Inf(1))
	tooMuch := task.New(3, 0, 10, 100, 1, math.Inf(1))
	ex.Engine.At(0, func() {
		for _, tk := range []*task.Task{cheap, pricey, tooMuch} {
			if _, err := client.SubmitTask(tk); err != nil {
				t.Error(err)
			}
		}
	})
	ex.Engine.Run()

	// First task: charged 100, leaving 50. Second: bid value 100 > 50, so
	// it is unaffordable, as is the third.
	if client.Placed != 1 || client.Unaffordable != 2 {
		t.Fatalf("placed %d unaffordable %d, want 1/2", client.Placed, client.Unaffordable)
	}
	if client.Remaining() != 50 {
		t.Errorf("remaining = %v, want 50", client.Remaining())
	}
	if tooMuch.State != task.Rejected {
		t.Errorf("unaffordable task state = %v, want rejected", tooMuch.State)
	}
}

func TestClientBudgetReplenishes(t *testing.T) {
	ex := NewExchange(BestYield{}, exchangeConfigs(1, admission.AcceptAll{}))
	client := NewClient(ex.Engine, ex.Broker, ClientConfig{
		Name: "u1", Budget: 100, Interval: 50,
	})
	a := task.New(1, 0, 10, 100, 0.001, math.Inf(1))
	b := task.New(2, 1, 10, 100, 0.001, math.Inf(1))  // same interval: unaffordable
	c := task.New(3, 60, 10, 100, 0.001, math.Inf(1)) // next interval: affordable
	client.ScheduleArrivals([]*task.Task{a, b, c})
	ex.Engine.Run()

	if client.Placed != 2 || client.Unaffordable != 1 {
		t.Fatalf("placed %d unaffordable %d, want 2/1", client.Placed, client.Unaffordable)
	}
}

func TestShadedStrategyLowersCharge(t *testing.T) {
	mkExchange := func() (*Exchange, *sim.Engine) {
		ex := NewExchange(BestYield{}, exchangeConfigs(1, admission.AcceptAll{}))
		return ex, ex.Engine
	}

	runWith := func(strategy BidStrategy) float64 {
		ex, eng := mkExchange()
		client := NewClient(eng, ex.Broker, ClientConfig{
			Name: "u", Budget: 1e9, Strategy: strategy,
		})
		tk := task.New(1, 0, 10, 100, 1, math.Inf(1))
		var spent float64
		eng.At(0, func() {
			c, err := client.SubmitTask(tk)
			if err != nil {
				t.Error(err)
			}
			if c != nil {
				spent = c.NegotiatedPrice
			}
		})
		eng.Run()
		return spent
	}

	full := runWith(Truthful{})
	shaded := runWith(Shaded{Fraction: 0.5})
	if shaded >= full {
		t.Errorf("shaded bid charged %v, truthful %v; shading should lower the charge", shaded, full)
	}
	if full != 100 || shaded != 50 {
		t.Errorf("charges = %v/%v, want 100/50 on an idle site", full, shaded)
	}
}

func TestStrategyNames(t *testing.T) {
	if (Truthful{}).Name() == "" || (Shaded{Fraction: 0.5}).Name() == "" {
		t.Error("strategy names empty")
	}
}
