package market

import (
	"fmt"

	"repro/internal/site"
	"repro/internal/task"
)

// SiteService adapts a simulated site to the seller-side negotiation
// interface and settles contracts as tasks complete.
type SiteService struct {
	s         *site.Site
	contracts map[task.ID]*Contract
	ledger    Ledger
}

// NewSiteService wraps a site. It registers a completion observer on the
// site (observers compose, so the site may already have others), so
// construct the service before the simulation starts.
func NewSiteService(s *site.Site) *SiteService {
	svc := &SiteService{s: s, contracts: make(map[task.ID]*Contract)}
	s.ObserveCompletions(svc.settle)
	return svc
}

// SiteID implements Service.
func (svc *SiteService) SiteID() string { return svc.s.ID }

// Site returns the wrapped site.
func (svc *SiteService) Site() *site.Site { return svc.s }

// Propose implements Service: it quotes the bid against the site's
// candidate schedule and applies the site's admission policy, without
// committing resources.
func (svc *SiteService) Propose(b Bid) (ServerBid, bool) {
	probe := task.New(b.TaskID, b.Arrival, b.Runtime, b.Value, b.Decay, b.Bound)
	q, err := svc.s.Quote(probe)
	if err != nil {
		return ServerBid{}, false
	}
	if !svc.s.Admission().Admit(q) {
		return ServerBid{}, false
	}
	return quoteToServerBid(svc.s.ID, q), true
}

// Award implements Service: it submits the task to the site and opens a
// contract. The site re-evaluates admission at award time; if the mix
// changed since the proposal and the task no longer clears the bar, the
// award fails with ErrNoAcceptingSite and the client may retry elsewhere.
func (svc *SiteService) Award(t *task.Task, sb ServerBid) (*Contract, error) {
	if t.ID != sb.TaskID {
		return nil, fmt.Errorf("market: award task %d does not match server bid for task %d", t.ID, sb.TaskID)
	}
	_, accepted, err := svc.s.Submit(t)
	if err != nil {
		return nil, err
	}
	if !accepted {
		return nil, ErrNoAcceptingSite
	}
	c := &Contract{Bid: BidFromTask(t), Server: sb, NegotiatedPrice: sb.ExpectedPrice, AwardedAt: svc.s.Engine().Now()}
	svc.contracts[t.ID] = c
	svc.ledger.Open++
	return c, nil
}

// settle closes the contract for a completed task at the value function's
// price for the actual completion time.
func (svc *SiteService) settle(t *task.Task) {
	c, ok := svc.contracts[t.ID]
	if !ok {
		return // task was submitted directly, outside the market
	}
	c.Settled = true
	c.CompletedAt = t.Completion
	c.FinalPrice = t.Yield
	svc.ledger.Open--
	svc.ledger.Settled++
	svc.ledger.Revenue += c.FinalPrice
	svc.ledger.Penalties += c.Penalty()
	if c.Violation() > 0 {
		svc.ledger.Violations++
	}
}

// Ledger summarizes a service's contract economics.
type Ledger struct {
	Open       int
	Settled    int
	Violations int     // contracts completed after their negotiated time
	Revenue    float64 // sum of final prices
	Penalties  float64 // sum of price shortfalls vs. negotiated expectations
}

// Ledger returns a snapshot of the service's contract ledger.
func (svc *SiteService) Ledger() Ledger { return svc.ledger }

// Contract returns the contract for a task, if one was awarded here.
func (svc *SiteService) Contract(id task.ID) (*Contract, bool) {
	c, ok := svc.contracts[id]
	return c, ok
}

var _ Service = (*SiteService)(nil)
