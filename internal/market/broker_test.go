package market

import (
	"math"
	"testing"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/site"
	"repro/internal/task"
	"repro/internal/workload"
)

func exchangeConfigs(n int, adm admission.Policy) []site.Config {
	cfgs := make([]site.Config, n)
	for i := range cfgs {
		cfgs[i] = site.Config{
			Processors:   2,
			Policy:       core.FirstReward{Alpha: 0.3, DiscountRate: 0.01},
			Admission:    adm,
			DiscountRate: 0.01,
		}
	}
	return cfgs
}

func TestExchangePlacesAndSettles(t *testing.T) {
	ex := NewExchange(BestYield{}, exchangeConfigs(3, admission.AcceptAll{}))
	spec := workload.Default()
	spec.Jobs = 60
	spec.Processors = 6
	spec.Seed = 5
	tr, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	tasks := tr.Clone()
	ex.ScheduleArrivals(tasks)
	ex.Run()

	if ex.Broker.Placed != len(tasks) || ex.Broker.Declined != 0 {
		t.Fatalf("broker placed %d declined %d of %d", ex.Broker.Placed, ex.Broker.Declined, len(tasks))
	}
	settled, completed := 0, 0
	var revenue, yield float64
	for i, svc := range ex.Services {
		led := svc.Ledger()
		settled += led.Settled
		revenue += led.Revenue
		if led.Open != 0 {
			t.Errorf("site %d has %d open contracts after drain", i, led.Open)
		}
		m := ex.Sites[i].Metrics()
		completed += m.Completed
		yield += m.TotalYield
	}
	if settled != len(tasks) || completed != len(tasks) {
		t.Fatalf("settled %d completed %d of %d", settled, completed, len(tasks))
	}
	if math.Abs(revenue-yield) > 1e-6 {
		t.Fatalf("contract revenue %v != site yield %v", revenue, yield)
	}
	if math.Abs(ex.TotalYield()-yield) > 1e-6 {
		t.Fatalf("TotalYield() = %v, want %v", ex.TotalYield(), yield)
	}
}

func TestBrokerPrefersIdleSite(t *testing.T) {
	ex := NewExchange(BestYield{}, exchangeConfigs(2, admission.AcceptAll{}))
	eng := ex.Engine

	// Occupy site 0 with a long task, then negotiate a new one: it must
	// land on the idle site 1.
	blocker := task.New(1, 0, 1000, 100, 0.01, math.Inf(1))
	blocker2 := task.New(2, 0, 1000, 100, 0.01, math.Inf(1))
	probe := task.New(3, 1, 10, 100, 1, math.Inf(1))

	eng.At(0, func() {
		if _, err := ex.Services[0].Award(blocker, ServerBid{SiteID: "site-0", TaskID: 1}); err != nil {
			t.Error(err)
		}
		if _, err := ex.Services[0].Award(blocker2, ServerBid{SiteID: "site-0", TaskID: 2}); err != nil {
			t.Error(err)
		}
	})
	var contract *Contract
	eng.At(1, func() {
		c, err := ex.Broker.Negotiate(probe)
		if err != nil {
			t.Error(err)
		}
		contract = c
	})
	eng.Run()

	if contract == nil || contract.Server.SiteID != "site-1" {
		t.Fatalf("probe placed on %+v, want site-1", contract)
	}
	if !contract.Settled {
		t.Error("contract not settled after run")
	}
	if contract.FinalPrice != 100 {
		t.Errorf("final price = %v, want 100 (ran immediately)", contract.FinalPrice)
	}
}

func TestBrokerDeclinesWhenAllReject(t *testing.T) {
	ex := NewExchange(BestYield{}, exchangeConfigs(2, admission.SlackThreshold{Threshold: 1e18}))
	probe := task.New(1, 0, 10, 100, 1, math.Inf(1))
	ex.Engine.At(0, func() {
		if _, err := ex.Broker.Negotiate(probe); err != ErrNoAcceptingSite {
			t.Errorf("Negotiate = %v, want ErrNoAcceptingSite", err)
		}
	})
	ex.Engine.Run()
	if probe.State != task.Rejected {
		t.Errorf("probe state = %v, want rejected", probe.State)
	}
	if ex.Broker.Declined != 1 {
		t.Errorf("Declined = %d, want 1", ex.Broker.Declined)
	}
}

func TestAwardMismatchedServerBid(t *testing.T) {
	ex := NewExchange(BestYield{}, exchangeConfigs(1, admission.AcceptAll{}))
	tk := task.New(1, 0, 10, 100, 1, math.Inf(1))
	ex.Engine.At(0, func() {
		if _, err := ex.Services[0].Award(tk, ServerBid{TaskID: 99}); err == nil {
			t.Error("award with mismatched task id should fail")
		}
	})
	ex.Engine.Run()
}

func TestLateContractPaysPenalty(t *testing.T) {
	// One slow site: a second task waits behind the first and settles below
	// its negotiated price.
	cfgs := exchangeConfigs(1, admission.AcceptAll{})
	cfgs[0].Processors = 1
	ex := NewExchange(BestYield{}, cfgs)

	a := task.New(1, 0, 50, 100, 1, math.Inf(1))
	b := task.New(2, 0, 50, 100, 1, math.Inf(1))
	var cb *Contract
	ex.Engine.At(0, func() {
		if _, err := ex.Broker.Negotiate(a); err != nil {
			t.Error(err)
		}
		c, err := ex.Broker.Negotiate(b)
		if err != nil {
			t.Error(err)
		}
		cb = c
	})
	ex.Engine.Run()

	if cb == nil || !cb.Settled {
		t.Fatal("second contract not settled")
	}
	// b was quoted knowing a is queued: expected completion 100, price 50.
	if cb.Server.ExpectedPrice != 50 || cb.FinalPrice != 50 {
		t.Errorf("expected price %v / final %v, want 50/50 (quote foresaw the wait)",
			cb.Server.ExpectedPrice, cb.FinalPrice)
	}
	if cb.Penalty() != 0 {
		t.Errorf("penalty = %v, want 0: the quote already priced the delay", cb.Penalty())
	}

	led := ex.Services[0].Ledger()
	if led.Settled != 2 {
		t.Errorf("settled = %d, want 2", led.Settled)
	}
}

func TestContractLookup(t *testing.T) {
	ex := NewExchange(BestYield{}, exchangeConfigs(1, admission.AcceptAll{}))
	tk := task.New(1, 0, 10, 100, 1, math.Inf(1))
	ex.Engine.At(0, func() {
		if _, err := ex.Broker.Negotiate(tk); err != nil {
			t.Error(err)
		}
	})
	ex.Engine.Run()
	if _, ok := ex.Services[0].Contract(1); !ok {
		t.Error("Contract(1) not found")
	}
	if _, ok := ex.Services[0].Contract(42); ok {
		t.Error("Contract(42) found unexpectedly")
	}
}
