package market

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/task"
)

// BidStrategy shapes the value function a client actually submits for a
// task. The paper assumes truthful bids but notes that pricing mechanisms
// exist precisely because buyers may shade; strategies make that dimension
// explorable.
type BidStrategy interface {
	Name() string
	// Shape returns the bid the client submits for the task. It must not
	// mutate the task.
	Shape(t *task.Task) Bid
}

// Truthful submits the task's own value function unchanged.
type Truthful struct{}

// Name implements BidStrategy.
func (Truthful) Name() string { return "truthful" }

// Shape implements BidStrategy.
func (Truthful) Shape(t *task.Task) Bid { return BidFromTask(t) }

// Shaded understates the task's maximum value by a fixed fraction,
// gambling that the site accepts anyway and charges less.
type Shaded struct {
	// Fraction of true value bid, in (0, 1].
	Fraction float64
}

// Name implements BidStrategy.
func (s Shaded) Name() string { return fmt.Sprintf("shaded(%g)", s.Fraction) }

// Shape implements BidStrategy.
func (s Shaded) Shape(t *task.Task) Bid {
	b := BidFromTask(t)
	f := s.Fraction
	if f <= 0 || f > 1 {
		f = 1
	}
	b.Value *= f
	return b
}

// ClientConfig parameterizes a budgeted client.
type ClientConfig struct {
	Name string
	// Budget is the currency granted at the start of each interval.
	// Unspent budget does not roll over, matching the per-interval grants
	// the paper envisions for economic resource managers.
	Budget float64
	// Interval is the replenishment period in simulation time units.
	Interval float64
	// Strategy shapes bids; nil means Truthful.
	Strategy BidStrategy
}

// Client is a budget-constrained buyer: it negotiates tasks through a
// broker, committing budget for each contract at its negotiated price, and
// replenishes its budget every interval. Tasks whose negotiated price
// exceeds the remaining budget are withheld (counted as unaffordable)
// rather than submitted.
type Client struct {
	cfg    ClientConfig
	engine *sim.Engine
	broker *Broker

	remaining float64
	interval  int // index of the interval `remaining` belongs to

	// Stats.
	Submitted    int
	Placed       int
	Declined     int
	Unaffordable int
	SpentTotal   float64
	Contracts    []*Contract
}

// NewClient attaches a client to an engine and broker. Budget
// replenishment is lazy — evaluated against the clock at each submission —
// so an idle client never keeps the simulation alive.
func NewClient(engine *sim.Engine, broker *Broker, cfg ClientConfig) *Client {
	if cfg.Strategy == nil {
		cfg.Strategy = Truthful{}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = math.Inf(1)
	}
	return &Client{cfg: cfg, engine: engine, broker: broker, remaining: cfg.Budget}
}

// refresh rolls the budget forward to the interval containing now.
func (c *Client) refresh() {
	if math.IsInf(c.cfg.Interval, 1) {
		return
	}
	idx := int(c.engine.Now() / c.cfg.Interval)
	if idx != c.interval {
		c.interval = idx
		c.remaining = c.cfg.Budget
	}
}

// Remaining reports the client's unspent budget in the current interval.
func (c *Client) Remaining() float64 {
	c.refresh()
	return c.remaining
}

// SubmitTask negotiates one task placement now, under the client's
// strategy and budget. It returns the contract if the task was placed.
func (c *Client) SubmitTask(t *task.Task) (*Contract, error) {
	c.Submitted++
	c.refresh()
	bid := c.cfg.Strategy.Shape(t)

	// Affordability gate: the most the client can be charged is the bid's
	// maximum value (the negotiated price never exceeds it).
	if bid.Value > c.remaining {
		c.Unaffordable++
		t.State = task.Rejected
		return nil, nil
	}

	contract, err := c.negotiateShaped(t, bid)
	if err == ErrNoAcceptingSite {
		c.Declined++
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	c.Placed++
	c.remaining -= contract.NegotiatedPrice
	c.SpentTotal += contract.NegotiatedPrice
	c.Contracts = append(c.Contracts, contract)
	return contract, nil
}

// negotiateShaped mirrors Broker.Negotiate but submits the shaped bid
// while awarding the real task (the site schedules what actually runs; the
// shaded value function governs what it earns).
func (c *Client) negotiateShaped(t *task.Task, bid Bid) (*Contract, error) {
	// With a truthful strategy the plain broker path is identical.
	if _, truthful := c.cfg.Strategy.(Truthful); truthful {
		return c.broker.Negotiate(t)
	}
	shadow := task.New(t.ID, t.Arrival, bid.Runtime, bid.Value, bid.Decay, bid.Bound)
	shadow.Class = t.Class
	contract, err := c.broker.Negotiate(shadow)
	if err != nil {
		return nil, err
	}
	// Reflect the shadow's lifecycle onto the caller's task record.
	t.State = shadow.State
	return contract, nil
}

// ScheduleArrivals registers the client's tasks at their arrival times.
func (c *Client) ScheduleArrivals(tasks []*task.Task) {
	for _, t := range tasks {
		t := t
		c.engine.At(t.Arrival, func() {
			if _, err := c.SubmitTask(t); err != nil {
				panic(err)
			}
		})
	}
}
