package market

import (
	"testing"
)

// FuzzParseSelector hardens the selector-spec grammar: arbitrary input must
// never panic, and any accepted spec must yield a selector that tolerates
// an empty offer set.
func FuzzParseSelector(f *testing.F) {
	f.Add("best-yield")
	f.Add("earliest")
	f.Add("best-yield:")
	f.Add("best-yield:x=1")
	f.Add("earliest,best-yield")
	f.Add("")
	f.Add(":")
	f.Add("\xff\x00")

	f.Fuzz(func(t *testing.T, spec string) {
		sel, err := ParseSelector(spec)
		if err != nil {
			return
		}
		if sel == nil {
			t.Fatalf("ParseSelector(%q) returned nil selector without error", spec)
		}
		if i := sel.Select(Bid{TaskID: 1, Runtime: 1, Value: 1}, nil); i >= 0 {
			t.Fatalf("ParseSelector(%q): selector picked offer %d from an empty set", spec, i)
		}
	})
}
