package market

import (
	"fmt"
	"sort"
)

// Pricer sets the price a site actually charges for an accepted task,
// given its own server bid and the full set of competing server bids the
// client collected. The paper's site policies charge the bid-derived price
// (value function at completion); Section 2 notes that charging below the
// bid — e.g. a Vickrey-style second price — gives buyers an incentive to
// bid truthfully. Pricing strategies are orthogonal to the scheduling and
// admission heuristics, which is exactly how this interface treats them.
type Pricer interface {
	Name() string
	// Price returns the charged price for the winning offer, given every
	// offer the negotiation produced (including the winner).
	Price(winner ServerBid, offers []ServerBid) float64
}

// FullPrice charges the winning server bid's own expected price — the
// paper's default, where bid value and price are equivalent.
type FullPrice struct{}

// Name implements Pricer.
func (FullPrice) Name() string { return "full-price" }

// Price implements Pricer.
func (FullPrice) Price(winner ServerBid, _ []ServerBid) float64 {
	return winner.ExpectedPrice
}

// SecondPrice charges the best competing expected price, capped at the
// winner's own — the single-commodity Vickrey discipline used by Spawn,
// transplanted to the server-bid setting: the winning site cannot extract
// more than the runner-up offer would have. With a single offer the winner
// pays its own price (there is no competing bid to anchor on).
type SecondPrice struct{}

// Name implements Pricer.
func (SecondPrice) Name() string { return "second-price" }

// Price implements Pricer.
func (SecondPrice) Price(winner ServerBid, offers []ServerBid) float64 {
	competing := make([]float64, 0, len(offers))
	for _, o := range offers {
		if o.SiteID == winner.SiteID && o.TaskID == winner.TaskID {
			continue
		}
		competing = append(competing, o.ExpectedPrice)
	}
	if len(competing) == 0 {
		return winner.ExpectedPrice
	}
	sort.Float64s(competing)
	best := competing[len(competing)-1]
	if best > winner.ExpectedPrice {
		return winner.ExpectedPrice
	}
	return best
}

// Rebate charges a fixed fraction of the bid-derived price, a simple
// price-signal knob for studying demand elasticity.
type Rebate struct {
	// Fraction of the bid-derived price charged, in (0, 1].
	Fraction float64
}

// Name implements Pricer.
func (r Rebate) Name() string { return fmt.Sprintf("rebate(%g)", r.Fraction) }

// Price implements Pricer.
func (r Rebate) Price(winner ServerBid, _ []ServerBid) float64 {
	f := r.Fraction
	if f <= 0 || f > 1 {
		f = 1
	}
	return winner.ExpectedPrice * f
}
