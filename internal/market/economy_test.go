package market

import (
	"math"
	"testing"

	"repro/internal/admission"
	"repro/internal/task"
	"repro/internal/workload"
)

// TestCompetingClientsConservation runs three budgeted clients against a
// shared exchange and checks the money and task conservation laws that
// must hold regardless of who wins what: every placement is charged at
// most its negotiated price, spend never exceeds granted budget, and the
// sites' settled contracts exactly cover the placements.
func TestCompetingClientsConservation(t *testing.T) {
	spec := workload.Default()
	spec.Jobs = 300
	spec.Processors = 8
	spec.Load = 1.5
	spec.ValueSkew = 3
	spec.Seed = 13
	tr, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}

	ex := NewExchange(BestYield{}, exchangeConfigs(2, admission.SlackThreshold{Threshold: 0}))
	const interval = 2000.0
	budgets := []float64{2000, 6000, 1e12}
	clients := make([]*Client, len(budgets))
	for i, b := range budgets {
		clients[i] = NewClient(ex.Engine, ex.Broker, ClientConfig{
			Name: "g", Budget: b, Interval: interval,
		})
	}
	// Deal tasks round-robin to the clients.
	all := tr.Clone()
	for i, tk := range all {
		c := clients[i%len(clients)]
		tk := tk
		ex.Engine.At(tk.Arrival, func() {
			if _, err := c.SubmitTask(tk); err != nil {
				panic(err)
			}
		})
	}
	ex.Run()

	totalPlaced, totalSubmitted := 0, 0
	for i, c := range clients {
		totalPlaced += c.Placed
		totalSubmitted += c.Submitted
		if c.Placed+c.Declined+c.Unaffordable != c.Submitted {
			t.Fatalf("client %d accounting: %d+%d+%d != %d", i, c.Placed, c.Declined, c.Unaffordable, c.Submitted)
		}
		for _, contract := range c.Contracts {
			if !contract.Settled {
				t.Fatalf("client %d holds an unsettled contract after drain", i)
			}
			if contract.ChargedPrice() > contract.NegotiatedPrice+1e-9 {
				t.Fatalf("charged %v above negotiated %v", contract.ChargedPrice(), contract.NegotiatedPrice)
			}
		}
	}
	if totalSubmitted != len(all) {
		t.Fatalf("submitted %d of %d", totalSubmitted, len(all))
	}
	// The starved client must place less than the rich one.
	if clients[0].Placed >= clients[2].Placed {
		t.Errorf("budget 2000 placed %d, budget inf placed %d; starvation should bind",
			clients[0].Placed, clients[2].Placed)
	}

	settled := 0
	for _, svc := range ex.Services {
		settled += svc.Ledger().Settled
	}
	if settled != totalPlaced {
		t.Fatalf("sites settled %d contracts for %d placements", settled, totalPlaced)
	}
}

func TestClientSubmitErrorPropagates(t *testing.T) {
	ex := NewExchange(BestYield{}, exchangeConfigs(1, admission.AcceptAll{}))
	c := NewClient(ex.Engine, ex.Broker, ClientConfig{Name: "u", Budget: 1e9})
	bad := task.New(1, 0, -5, 100, 1, math.Inf(1)) // invalid runtime
	ex.Engine.At(0, func() {
		// Invalid tasks produce no offers: every site errors on the quote,
		// so the negotiation ends declined rather than failing the client.
		if contract, err := c.SubmitTask(bad); err != nil || contract != nil {
			t.Errorf("SubmitTask(bad) = %v, %v; want declined", contract, err)
		}
	})
	ex.Run()
	if c.Declined != 1 {
		t.Errorf("declined = %d, want 1", c.Declined)
	}
}
