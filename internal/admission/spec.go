package admission

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// ParseSpec constructs an admission policy from a spec string in the same
// grammar core.ParseSpec uses for scheduling policies:
//
//	accept-all | all           (also: the empty string)
//	slack[:threshold=T]
//	min-yield[:threshold=T]
//
// Thresholds default to 0.
func ParseSpec(spec string) (Policy, error) {
	if strings.TrimSpace(spec) == "" {
		return AcceptAll{}, nil
	}
	sp, err := core.SplitSpec(spec)
	if err != nil {
		return nil, err
	}
	switch sp.Name {
	case "accept-all", "acceptall", "all":
		return AcceptAll{}, sp.Check(nil, nil)
	case "slack":
		if err := sp.Check([]string{"threshold"}, nil); err != nil {
			return nil, err
		}
		th, err := sp.Float("threshold", 0)
		if err != nil {
			return nil, err
		}
		return SlackThreshold{Threshold: th}, nil
	case "min-yield", "minyield":
		if err := sp.Check([]string{"threshold"}, nil); err != nil {
			return nil, err
		}
		th, err := sp.Float("threshold", 0)
		if err != nil {
			return nil, err
		}
		return MinYield{Threshold: th}, nil
	default:
		return nil, fmt.Errorf("admission: unknown policy %q (want accept-all | slack[:threshold=] | min-yield[:threshold=])", sp.Name)
	}
}
