package admission

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/task"
)

func insertionTasks(n int, startID int, bounded bool, seed int64) []*task.Task {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*task.Task, n)
	for i := range out {
		bound := math.Inf(1)
		if bounded {
			bound = rng.Float64() * 200
		}
		out[i] = task.New(task.ID(startID+i), rng.Float64()*20, 1+rng.Float64()*100,
			1+rng.Float64()*300, rng.Float64()*1.5, bound)
	}
	return out
}

// TestEvaluateInsertionMatchesEvaluate: a quote computed against the base
// candidate plus a WithTask insertion must be bit-identical (for exact
// insertion keys) to the quote Evaluate computes from a full rebuild that
// contains the probe — same slot, same Equation 8 cost, same slack.
func TestEvaluateInsertionMatchesEvaluate(t *testing.T) {
	now := 30.0
	busy := []float64{40, 55}
	procs := 4
	rate := 0.01

	for _, p := range []core.Policy{core.FirstPrice{}, core.SWPT{}, core.PresentValue{DiscountRate: rate}} {
		for _, bounded := range []bool{false, true} {
			pending := insertionTasks(40, 1, bounded, 5)
			probes := insertionTasks(12, 1000, bounded, 6)
			base := core.BuildCandidate(p, now, procs, busy, pending)
			for _, pr := range probes {
				ins, ok := base.WithTask(pr)
				if !ok {
					t.Fatalf("%s: WithTask unsupported", p.Name())
				}
				got := EvaluateInsertion(pr, base, ins, rate)

				full := core.BuildCandidate(p, now, procs, busy,
					append(append([]*task.Task(nil), pending...), pr))
				want, err := Evaluate(pr, full, rate)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s bounded=%v probe %d:\n incremental %v\n rebuild     %v",
						p.Name(), bounded, pr.ID, got, want)
				}
			}
		}
	}
}

// FirstReward's insertion key reconstructs the base-frame priority with a
// uniform shift, so rank position is exact but accumulated floats can
// differ in the last bits; quote fields get a tolerance.
func TestEvaluateInsertionFirstRewardClose(t *testing.T) {
	now := 30.0
	rate := 0.01
	fr := core.FirstReward{Alpha: 0.3, DiscountRate: rate}
	pending := insertionTasks(40, 1, false, 7)
	probes := insertionTasks(12, 1000, false, 8)
	base := core.BuildCandidate(fr, now, 4, nil, pending)
	for _, pr := range probes {
		ins, ok := base.WithTask(pr)
		if !ok {
			t.Fatal("FirstReward unbounded: WithTask unsupported")
		}
		got := EvaluateInsertion(pr, base, ins, rate)
		full := core.BuildCandidate(fr, now, 4, nil,
			append(append([]*task.Task(nil), pending...), pr))
		want, err := Evaluate(pr, full, rate)
		if err != nil {
			t.Fatal(err)
		}
		for name, pair := range map[string][2]float64{
			"start":      {got.ExpectedStart, want.ExpectedStart},
			"completion": {got.ExpectedCompletion, want.ExpectedCompletion},
			"yield":      {got.ExpectedYield, want.ExpectedYield},
			"pv":         {got.PresentValue, want.PresentValue},
			"cost":       {got.Cost, want.Cost},
			"slack":      {got.Slack, want.Slack},
		} {
			if math.Abs(pair[0]-pair[1]) > 1e-9 {
				t.Fatalf("probe %d: %s = %g, rebuild %g", pr.ID, name, pair[0], pair[1])
			}
		}
	}
}
