// Package admission implements the paper's task-acceptance heuristics
// (Section 6).
//
// When a bid arrives, the site integrates the task into its candidate
// schedule, estimates the task's yield at its expected completion time, and
// computes the task's slack — the additional delay the task can absorb
// before its reward drops below the yield threshold (zero, without loss of
// generality). Tasks whose slack falls below a configurable threshold are
// rejected: accepting them would constrain the site's flexibility to take
// more profitable work later.
package admission

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/task"
)

// Quote is the site's evaluation of a proposed task against its current
// candidate schedule. It carries everything an acceptance policy — and,
// upstream, a negotiating client — needs.
type Quote struct {
	TaskID             task.ID
	Now                float64
	ExpectedStart      float64
	ExpectedCompletion float64
	ExpectedYield      float64 // value function at ExpectedCompletion
	PresentValue       float64 // ExpectedYield discounted over RPT (Equation 3)
	Cost               float64 // delay imposed on tasks behind it (Equation 8)
	Slack              float64 // (PV - cost) / decay (Equation 7)
}

// String renders the quote compactly.
func (q Quote) String() string {
	return fmt.Sprintf("quote(task=%d start=%.2f completion=%.2f yield=%.2f pv=%.2f cost=%.2f slack=%.2f)",
		q.TaskID, q.ExpectedStart, q.ExpectedCompletion, q.ExpectedYield, q.PresentValue, q.Cost, q.Slack)
}

// Evaluate builds a quote for task t given the candidate schedule that
// already integrates it. discountRate is the present-value discount used in
// the slack numerator.
//
// The cost term follows Equation 8: accepting t delays each task behind it
// in the candidate schedule by t's runtime, costing decay_j * runtime_t
// each. The slack follows Equation 7: how much extra delay t tolerates
// before its discounted reward, net of the cost it imposes, reaches zero.
// Tasks with zero decay never lose value, so their slack is +Inf unless
// the net reward is already negative.
func Evaluate(t *task.Task, cand *core.Candidate, discountRate float64) (Quote, error) {
	slot, ok := cand.Slot(t.ID)
	if !ok {
		return Quote{}, fmt.Errorf("admission: task %d not in candidate schedule", t.ID)
	}
	pv := t.YieldAtCompletion(slot.Completion) / (1 + discountRate*t.RPT)

	var cost float64
	for _, behind := range cand.Behind(t.ID) {
		cost += behind.Decay * t.Runtime
	}

	net := pv - cost
	var slack float64
	switch {
	case t.Decay > 0:
		slack = net / t.Decay
	case net >= 0:
		slack = math.Inf(1)
	default:
		slack = math.Inf(-1)
	}

	return Quote{
		TaskID:             t.ID,
		Now:                cand.Now,
		ExpectedStart:      slot.Start,
		ExpectedCompletion: slot.Completion,
		ExpectedYield:      t.YieldAtCompletion(slot.Completion),
		PresentValue:       pv,
		Cost:               cost,
		Slack:              slack,
	}, nil
}

// EvaluateInsertion builds the same quote Evaluate would, from a base
// candidate schedule (which does NOT contain t) plus the insertion
// computed by cand.WithTask(t). The tasks t would delay are exactly the
// base slots from the insertion position on, accumulated in the same
// order Evaluate walks Behind, so the two paths produce bit-identical
// quotes for policies whose insertion keys are exact.
//
// This is the negotiation fast path: one base candidate answers m
// competing proposals in O(m·(log n + n)) instead of m full O(n log n)
// rebuilds.
func EvaluateInsertion(t *task.Task, cand *core.Candidate, ins core.Insertion, discountRate float64) Quote {
	slot := ins.Slot
	pv := t.YieldAtCompletion(slot.Completion) / (1 + discountRate*t.RPT)

	var cost float64
	for _, s := range cand.Slots[ins.Pos:] {
		cost += s.Task.Decay * t.Runtime
	}

	net := pv - cost
	var slack float64
	switch {
	case t.Decay > 0:
		slack = net / t.Decay
	case net >= 0:
		slack = math.Inf(1)
	default:
		slack = math.Inf(-1)
	}

	return Quote{
		TaskID:             t.ID,
		Now:                cand.Now,
		ExpectedStart:      slot.Start,
		ExpectedCompletion: slot.Completion,
		ExpectedYield:      t.YieldAtCompletion(slot.Completion),
		PresentValue:       pv,
		Cost:               cost,
		Slack:              slack,
	}
}

// Policy decides whether a quoted task is worth accepting into the current
// task mix.
type Policy interface {
	Name() string
	Admit(q Quote) bool
}

// AcceptAll admits every task. It models the constrained scheduler of
// Section 5 (and Millennium), which must execute all submitted jobs, and
// the "without admission control" baselines of Figures 6-7.
type AcceptAll struct{}

// Name implements Policy.
func (AcceptAll) Name() string { return "accept-all" }

// Admit implements Policy.
func (AcceptAll) Admit(Quote) bool { return true }

// SlackThreshold rejects tasks whose slack falls below Threshold
// (Section 6). Higher thresholds are more risk-averse: the paper shows the
// ideal threshold grows with load (Figure 7).
type SlackThreshold struct {
	Threshold float64
}

// Name implements Policy.
func (p SlackThreshold) Name() string { return fmt.Sprintf("slack(threshold=%g)", p.Threshold) }

// Admit implements Policy.
func (p SlackThreshold) Admit(q Quote) bool { return q.Slack >= p.Threshold }

// MinYield rejects tasks whose expected yield in the candidate schedule is
// below Threshold. It is a simpler reward-only policy kept as a comparison
// point: unlike slack, it ignores the cost a task imposes on the mix.
type MinYield struct {
	Threshold float64
}

// Name implements Policy.
func (p MinYield) Name() string { return fmt.Sprintf("min-yield(threshold=%g)", p.Threshold) }

// Admit implements Policy.
func (p MinYield) Admit(q Quote) bool { return q.ExpectedYield >= p.Threshold }
