package admission

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/task"
)

func evalOne(t *testing.T, tk *task.Task, queue []*task.Task, procs int, discount float64) Quote {
	t.Helper()
	all := append(append([]*task.Task{}, queue...), tk)
	cand := core.BuildCandidate(core.FCFS{}, 0, procs, nil, all)
	q, err := Evaluate(tk, cand, discount)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestEvaluateIdleSite(t *testing.T) {
	// Idle site: the task starts now, completes at its runtime, earns full
	// value; cost is zero; slack = PV/decay.
	tk := task.New(1, 0, 10, 100, 2, math.Inf(1))
	q := evalOne(t, tk, nil, 1, 0)
	if q.ExpectedStart != 0 || q.ExpectedCompletion != 10 {
		t.Errorf("quote start/completion = %v/%v, want 0/10", q.ExpectedStart, q.ExpectedCompletion)
	}
	if q.ExpectedYield != 100 {
		t.Errorf("ExpectedYield = %v, want 100", q.ExpectedYield)
	}
	if q.Cost != 0 {
		t.Errorf("Cost = %v, want 0", q.Cost)
	}
	if q.Slack != 50 { // 100/2
		t.Errorf("Slack = %v, want 50", q.Slack)
	}
}

func TestEvaluateDiscountsPV(t *testing.T) {
	tk := task.New(1, 0, 10, 100, 2, math.Inf(1))
	q := evalOne(t, tk, nil, 1, 0.1) // PV = 100/(1+1) = 50
	if math.Abs(q.PresentValue-50) > 1e-9 {
		t.Errorf("PresentValue = %v, want 50", q.PresentValue)
	}
	if math.Abs(q.Slack-25) > 1e-9 {
		t.Errorf("Slack = %v, want 25", q.Slack)
	}
}

func TestEvaluateCostEquation8(t *testing.T) {
	// FCFS: the new task (arrival 5) lands between earlier and later queue
	// entries; tasks behind it pay decay_j * runtime_new each.
	ahead := task.New(1, 0, 10, 100, 1, math.Inf(1))
	behindA := task.New(2, 6, 10, 100, 3, math.Inf(1))
	behindB := task.New(3, 7, 10, 100, 5, math.Inf(1))
	tk := task.New(4, 5, 20, 300, 2, math.Inf(1))

	q := evalOne(t, tk, []*task.Task{ahead, behindA, behindB}, 1, 0)
	// cost = (3+5) * runtime(20) = 160.
	if math.Abs(q.Cost-160) > 1e-9 {
		t.Errorf("Cost = %v, want 160", q.Cost)
	}
	// Expected start behind 'ahead' = 10; completion 30; delay = 30-25 = 5;
	// yield = 300 - 2*5 = 290; slack = (290-160)/2 = 65.
	if math.Abs(q.ExpectedYield-290) > 1e-9 {
		t.Errorf("ExpectedYield = %v, want 290", q.ExpectedYield)
	}
	if math.Abs(q.Slack-65) > 1e-9 {
		t.Errorf("Slack = %v, want 65", q.Slack)
	}
}

func TestEvaluateZeroDecaySlack(t *testing.T) {
	patient := task.New(1, 0, 10, 100, 0, math.Inf(1))
	q := evalOne(t, patient, nil, 1, 0)
	if !math.IsInf(q.Slack, 1) {
		t.Errorf("zero-decay positive-net slack = %v, want +Inf", q.Slack)
	}

	// Zero decay but net-negative: behind it sits an urgent task paying the
	// cost. Make the candidate put the patient task first via FCFS arrival.
	urgent := task.New(2, 1, 10, 100, 50, math.Inf(1))
	worthless := task.New(3, 0, 10, -5, 0, math.Inf(1)) // negative value
	all := []*task.Task{urgent, worthless}
	cand := core.BuildCandidate(core.FCFS{}, 0, 1, nil, all)
	q2, err := Evaluate(worthless, cand, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(q2.Slack, -1) {
		t.Errorf("zero-decay negative-net slack = %v, want -Inf", q2.Slack)
	}
}

func TestEvaluateMissingTask(t *testing.T) {
	cand := core.BuildCandidate(core.FCFS{}, 0, 1, nil, nil)
	if _, err := Evaluate(task.New(1, 0, 10, 100, 1, 0), cand, 0); err == nil {
		t.Error("Evaluate on a task outside the candidate should fail")
	}
}

func TestSlackThresholdPolicy(t *testing.T) {
	p := SlackThreshold{Threshold: 180}
	if p.Admit(Quote{Slack: 179.9}) {
		t.Error("admitted below threshold")
	}
	if !p.Admit(Quote{Slack: 180}) {
		t.Error("rejected at threshold")
	}
	if !p.Admit(Quote{Slack: math.Inf(1)}) {
		t.Error("rejected infinite slack")
	}
	if p.Admit(Quote{Slack: math.Inf(-1)}) {
		t.Error("admitted -Inf slack")
	}
	if !strings.Contains(p.Name(), "180") {
		t.Errorf("Name() = %q should carry the threshold", p.Name())
	}
}

func TestAcceptAll(t *testing.T) {
	if !(AcceptAll{}).Admit(Quote{Slack: math.Inf(-1), ExpectedYield: -1e9}) {
		t.Error("AcceptAll rejected a task")
	}
	if (AcceptAll{}).Name() == "" {
		t.Error("AcceptAll has no name")
	}
}

func TestMinYield(t *testing.T) {
	p := MinYield{Threshold: 10}
	if p.Admit(Quote{ExpectedYield: 9}) || !p.Admit(Quote{ExpectedYield: 10}) {
		t.Error("MinYield threshold broken")
	}
	if p.Name() == "" {
		t.Error("MinYield has no name")
	}
}

func TestQuoteString(t *testing.T) {
	q := Quote{TaskID: 7, ExpectedCompletion: 12.5, Slack: 3.25}
	s := q.String()
	if !strings.Contains(s, "7") || !strings.Contains(s, "12.50") {
		t.Errorf("Quote.String() = %q missing fields", s)
	}
}

// TestSlackMonotoneInQueueDepth: the deeper a task lands in the candidate
// schedule, the lower its slack — the mechanism by which load depresses
// admission (Section 6).
func TestSlackMonotoneInQueueDepth(t *testing.T) {
	prev := math.Inf(1)
	for depth := 0; depth <= 8; depth++ {
		var queue []*task.Task
		for i := 0; i < depth; i++ {
			queue = append(queue, task.New(task.ID(i+1), 0, 50, 100, 0.5, math.Inf(1)))
		}
		tk := task.New(99, 1, 10, 100, 1, math.Inf(1)) // arrives after the queue
		q := evalOne(t, tk, queue, 1, 0.01)
		if q.Slack >= prev && depth > 0 {
			t.Errorf("slack did not decrease with depth %d: %v >= %v", depth, q.Slack, prev)
		}
		prev = q.Slack
	}
}
