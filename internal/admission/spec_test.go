package admission

import "testing"

func TestParseSpecAdmission(t *testing.T) {
	cases := []struct {
		spec string
		want Policy
	}{
		{"", AcceptAll{}},
		{"accept-all", AcceptAll{}},
		{"acceptall", AcceptAll{}},
		{"ALL", AcceptAll{}},
		{"slack", SlackThreshold{}},
		{"slack:threshold=2", SlackThreshold{Threshold: 2}},
		{"Slack:Threshold=-150", SlackThreshold{Threshold: -150}},
		{"min-yield", MinYield{}},
		{"minyield:threshold=5", MinYield{Threshold: 5}},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSpec(%q) = %#v, want %#v", tc.spec, got, tc.want)
		}
	}
}

func TestParseSpecAdmissionErrors(t *testing.T) {
	for _, spec := range []string{
		"nosuch",
		"slack:bogus=1",
		"slack:threshold=abc",
		"accept-all:threshold=1",
		"min-yield:threshold=1,threshold=2",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", spec)
		}
	}
}
