package admission

import "testing"

// FuzzParseSpec hardens the admission-spec grammar: arbitrary input must
// never panic, and any accepted spec must yield a usable, named policy.
func FuzzParseSpec(f *testing.F) {
	f.Add("accept-all")
	f.Add("slack:threshold=0")
	f.Add("slack:threshold=-50")
	f.Add("min-yield:threshold=10")
	f.Add("slack:threshold=inf")
	f.Add("slack:threshold=nan")
	f.Add("slack:")
	f.Add("slack:threshold")
	f.Add("min-yield:threshold=1e309")
	f.Add("=,=,=")
	f.Add("\x00")

	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParseSpec(spec)
		if err != nil {
			return
		}
		if p == nil {
			t.Fatalf("ParseSpec(%q) returned nil policy without error", spec)
		}
		if p.Name() == "" {
			t.Fatalf("ParseSpec(%q) returned unnamed policy", spec)
		}
	})
}
