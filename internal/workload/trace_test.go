package workload

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/task"
)

func TestTraceJSONRoundTrip(t *testing.T) {
	spec := Default()
	spec.Jobs = 50
	spec.Bound = 25 // finite bound exercises the numeric encoding
	tr, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if back.Spec.Jobs != spec.Jobs || back.Spec.Bound != 25 {
		t.Fatalf("spec round trip: %+v", back.Spec)
	}
	if len(back.Tasks) != len(tr.Tasks) {
		t.Fatalf("task count %d != %d", len(back.Tasks), len(tr.Tasks))
	}
	for i := range tr.Tasks {
		a, b := tr.Tasks[i], back.Tasks[i]
		if a.ID != b.ID || a.Arrival != b.Arrival || a.Runtime != b.Runtime ||
			a.Value != b.Value || a.Decay != b.Decay || a.Bound != b.Bound || a.Class != b.Class {
			t.Fatalf("task %d round trip mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestTraceRoundTripInfiniteBound(t *testing.T) {
	spec := Default()
	spec.Jobs = 10
	tr, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Inf") {
		t.Fatalf("raw JSON leaked a non-portable Inf literal: %s", buf.String()[:200])
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(back.Spec.Bound, 1) {
		t.Errorf("spec bound came back %v, want +Inf", back.Spec.Bound)
	}
	for _, tk := range back.Tasks {
		if !tk.Unbounded() {
			t.Fatalf("task %d bound %v, want +Inf", tk.ID, tk.Bound)
		}
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	spec := Default()
	spec.Jobs = 20
	tr, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tasks) != 20 {
		t.Fatalf("read %d tasks, want 20", len(back.Tasks))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"spec":{"jobs":1},"tasks":[{"id":1,"runtime":-5,"bound":"0"}]}`)); err == nil {
		t.Error("invalid task accepted")
	}
	if _, err := Read(strings.NewReader(`{"spec":{"jobs":1},"tasks":[{"id":1,"runtime":5,"bound":"zzz"}]}`)); err == nil {
		t.Error("bad bound accepted")
	}
}

func TestReadSortsByArrival(t *testing.T) {
	in := `{"spec":{"jobs":2,"processors":1,"load":1,"mean_runtime":1,"mean_value_rate":1,"value_skew":1,"decay_skew":1,"zero_cross_factor":1,"bound":"inf"},
	"tasks":[
	  {"id":2,"arrival":10,"runtime":1,"value":1,"decay":0.1,"bound":"inf"},
	  {"id":1,"arrival":5,"runtime":1,"value":1,"decay":0.1,"bound":"inf"}
	]}`
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tasks[0].ID != 1 || tr.Tasks[1].ID != 2 {
		t.Errorf("tasks not sorted by arrival: %v, %v", tr.Tasks[0].ID, tr.Tasks[1].ID)
	}
}

func TestCloneIsolation(t *testing.T) {
	spec := Default()
	spec.Jobs = 5
	tr, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	clones := tr.Clone()
	clones[0].State = task.Completed
	clones[0].RPT = 0
	if tr.Tasks[0].State != task.Submitted || tr.Tasks[0].RPT != tr.Tasks[0].Runtime {
		t.Error("Clone() aliases the trace's tasks")
	}
}

func TestSpanAndWorkEmptyTrace(t *testing.T) {
	tr := &Trace{}
	if f, l := tr.Span(); f != 0 || l != 0 {
		t.Error("empty trace span should be zeros")
	}
	if tr.OfferedLoad() != 0 || tr.TotalWork() != 0 {
		t.Error("empty trace load/work should be zero")
	}
}
