package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead hardens the trace decoder against malformed input: it must
// return an error or a valid trace, never panic, and every accepted trace
// must re-encode and re-decode to the same task set.
func FuzzRead(f *testing.F) {
	spec := Default()
	spec.Jobs = 5
	tr, err := Generate(spec)
	if err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	if err := tr.Write(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"spec":{},"tasks":[]}`)
	f.Add(`{"spec":{"jobs":1},"tasks":[{"id":1,"runtime":5,"bound":"inf"}]}`)
	f.Add(`not json at all`)
	f.Add(`{"spec":{"bound":"-3"}}`)
	// Trace-v2 seeds: labeled tasks, strict bounds, version refusal.
	f.Add(`{"version":2,"spec":{"bound":"inf"},"tasks":[{"id":1,"runtime":5,"bound":"12.5","cohort":"batch","client":3}]}`)
	f.Add(`{"version":2,"spec":{},"tasks":[]}`)
	f.Add(`{"version":2,"spec":{"bound":"inf"},"tasks":[{"id":1,"runtime":5}]}`)
	f.Add(`{"version":3,"spec":{"bound":"inf"},"tasks":[]}`)
	f.Add(`{"version":2,"spec":{"bound":"NaN"},"tasks":[]}`)

	f.Fuzz(func(t *testing.T, input string) {
		got, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, tk := range got.Tasks {
			if vErr := tk.Validate(); vErr != nil {
				t.Fatalf("Read accepted invalid task: %v", vErr)
			}
		}
		var buf bytes.Buffer
		if err := got.Write(&buf); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decode of accepted trace failed: %v", err)
		}
		if len(back.Tasks) != len(got.Tasks) {
			t.Fatalf("round trip changed task count %d -> %d", len(got.Tasks), len(back.Tasks))
		}
	})
}
