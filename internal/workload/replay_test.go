// Replay determinism: the property backing the record/replay loop. A
// generated trace must survive Write→Read bit-identically (same per-task
// fields) and must produce the same simulated outcome on every replay —
// otherwise sim-vs-live comparisons measure serialization noise, not
// scheduling.
package workload_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/site"
	"repro/internal/workload"
)

func burstySpec(seed int64) workload.Spec {
	spec := workload.Default()
	spec.Jobs = 400
	spec.Seed = seed
	spec.Processors = 8
	spec.Bound = 150
	spec.Envelope = workload.Envelope{{Amplitude: 0.4, Period: 500}}
	spec.Cohorts = []workload.Cohort{
		{Name: "interactive", Weight: 2, Clients: 4, ClientSkew: 1,
			ArrivalKind: workload.DistGamma, ArrivalCV: 4, MeanRuntime: 30},
		{Name: "batch", Weight: 1, Clients: 2,
			ArrivalKind: workload.DistWeibull, ArrivalCV: 2, MeanRuntime: 200, BatchSize: 2},
	}
	return spec
}

func TestWriteReadReplayBitIdentical(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1001} {
		spec := burstySpec(seed)
		tr, err := workload.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := workload.Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(back.Tasks) != len(tr.Tasks) {
			t.Fatalf("seed %d: %d tasks back, want %d", seed, len(back.Tasks), len(tr.Tasks))
		}
		for i := range tr.Tasks {
			// Tasks are plain structs of comparable fields; demand exact
			// equality, not approximate — float64s round-trip through the
			// JSON encoder losslessly at %g precision.
			if *back.Tasks[i] != *tr.Tasks[i] {
				t.Fatalf("seed %d: task %d changed across Write/Read:\n  out: %+v\n  in:  %+v",
					seed, i, tr.Tasks[i], back.Tasks[i])
			}
		}

		cfg := site.Config{Processors: spec.Processors,
			Policy: core.FirstReward{Alpha: 0.3, DiscountRate: 0.01}}
		orig := site.RunTrace(tr.Clone(), cfg)
		replayed := site.RunTrace(back.Tasks, cfg)
		again := site.RunTrace(back.Clone(), cfg)
		if orig.TotalYield != replayed.TotalYield || orig.Completed != replayed.Completed {
			t.Fatalf("seed %d: replay yield %v/%d, original %v/%d",
				seed, replayed.TotalYield, replayed.Completed, orig.TotalYield, orig.Completed)
		}
		if again.TotalYield != replayed.TotalYield {
			t.Fatalf("seed %d: second replay diverged: %v vs %v",
				seed, again.TotalYield, replayed.TotalYield)
		}
	}
}
