package workload

import (
	"math"
	"testing"

	"repro/internal/task"
)

func TestGenerateBasicShape(t *testing.T) {
	spec := Default()
	spec.Jobs = 2000
	tr, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tasks) != 2000 {
		t.Fatalf("generated %d tasks, want 2000", len(tr.Tasks))
	}
	var prev float64
	for _, tk := range tr.Tasks {
		if err := tk.Validate(); err != nil {
			t.Fatal(err)
		}
		if tk.Arrival < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = tk.Arrival
		if !tk.Unbounded() {
			t.Fatal("default spec should be unbounded")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Default()
	spec.Jobs = 200
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tasks {
		x, y := a.Tasks[i], b.Tasks[i]
		if *x != *y {
			t.Fatalf("task %d differs across identical generations", i)
		}
	}
	spec.Seed = 2
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Tasks {
		if a.Tasks[i].Runtime != c.Tasks[i].Runtime {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestOfferedLoadMatchesSpec(t *testing.T) {
	for _, load := range []float64{0.5, 1, 2} {
		spec := Default()
		spec.Jobs = 8000
		spec.Load = load
		tr, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		got := tr.OfferedLoad()
		if math.Abs(got-load)/load > 0.1 {
			t.Errorf("load %v: offered %v", load, got)
		}
	}
}

func TestHighValueClassFractionAndSkew(t *testing.T) {
	spec := Default()
	spec.Jobs = 20000
	spec.ValueSkew = 4
	tr, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var hi, lo int
	var hiRate, loRate float64
	for _, tk := range tr.Tasks {
		rate := tk.Value / tk.Runtime
		if tk.Class == task.HighValue {
			hi++
			hiRate += rate
		} else {
			lo++
			loRate += rate
		}
	}
	frac := float64(hi) / float64(hi+lo)
	if math.Abs(frac-0.2) > 0.02 {
		t.Errorf("high-value fraction = %v, want ~0.2", frac)
	}
	ratio := (hiRate / float64(hi)) / (loRate / float64(lo))
	if math.Abs(ratio-4)/4 > 0.05 {
		t.Errorf("realized value skew = %v, want ~4", ratio)
	}
	// Overall mean value rate is preserved at 1 regardless of skew.
	mean := (hiRate + loRate) / float64(hi+lo)
	if math.Abs(mean-1) > 0.03 {
		t.Errorf("mean value rate = %v, want ~1", mean)
	}
}

func TestDecayCalibration(t *testing.T) {
	spec := Default()
	spec.Jobs = 20000
	spec.ZeroCrossFactor = 5
	tr, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, tk := range tr.Tasks {
		sum += tk.Decay
	}
	mean := sum / float64(len(tr.Tasks))
	want := spec.MeanDecayRate() // mean value rate / zcf = 0.2
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("mean decay = %v, want ~%v", mean, want)
	}
}

func TestBatchArrivals(t *testing.T) {
	spec := Millennium()
	spec.Jobs = 1600
	tr, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Count distinct arrival instants: with batches of 16, ~100 instants.
	instants := map[float64]int{}
	for _, tk := range tr.Tasks {
		instants[tk.Arrival]++
	}
	if len(instants) != 100 {
		t.Errorf("distinct arrival instants = %d, want 100", len(instants))
	}
	for at, n := range instants {
		if n != 16 {
			t.Errorf("batch at %v has %d jobs, want 16", at, n)
		}
	}
	// Millennium decay is uniform.
	d0 := tr.Tasks[0].Decay
	for _, tk := range tr.Tasks {
		if tk.Decay != d0 {
			t.Fatal("Millennium mix should have uniform decay")
		}
	}
	// And bounded at zero.
	if tr.Tasks[0].Bound != 0 {
		t.Error("Millennium mix should bound penalties at zero")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Jobs = 0 },
		func(s *Spec) { s.Processors = 0 },
		func(s *Spec) { s.Load = 0 },
		func(s *Spec) { s.MeanRuntime = -1 },
		func(s *Spec) { s.MeanValueRate = 0 },
		func(s *Spec) { s.ValueSkew = 0.5 },
		func(s *Spec) { s.DecaySkew = 0 },
		func(s *Spec) { s.HighValueFrac = 1.5 },
		func(s *Spec) { s.HighDecayFrac = -0.1 },
		func(s *Spec) { s.ZeroCrossFactor = 0 },
		func(s *Spec) { s.Bound = -1 },
		func(s *Spec) { s.Bound = math.NaN() },
		func(s *Spec) { s.Load = math.NaN() },
		func(s *Spec) { s.Load = math.Inf(1) },
		func(s *Spec) { s.RuntimeCV = -0.3 },
		func(s *Spec) { s.ArrivalCV = math.NaN() },
		func(s *Spec) { s.ValueCV = math.Inf(1) },
		func(s *Spec) { s.DecayCV = -1 },
		func(s *Spec) { s.Envelope = Envelope{{Amplitude: -0.2, Period: 10}} },
		func(s *Spec) { s.Envelope = Envelope{{Amplitude: 0.5, Period: 0}} },
		func(s *Spec) { s.Cohorts = []Cohort{{Name: "", Weight: 1}} },
		func(s *Spec) { s.Cohorts = []Cohort{{Name: "a", Weight: -1}} },
		func(s *Spec) { s.Cohorts = []Cohort{{Name: "a", Weight: 1}, {Name: "a", Weight: 2}} },
		func(s *Spec) { s.Cohorts = []Cohort{{Name: "a", Weight: 1, ArrivalCV: math.NaN()}} },
	}
	for i, mutate := range bad {
		spec := Default()
		mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d: bad spec validated", i)
		}
		if _, err := Generate(spec); err == nil {
			t.Errorf("case %d: bad spec generated", i)
		}
	}
}

func TestCyclicLoad(t *testing.T) {
	spec := Default()
	spec.Jobs = 30000
	spec.CycleAmplitude = 0.8
	spec.CyclePeriod = 4000
	tr, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Count arrivals in the rising half versus the falling half of each
	// cycle; with amplitude 0.8 the peak half must carry far more.
	var peakHalf, troughHalf int
	for _, tk := range tr.Tasks {
		phase := math.Mod(tk.Arrival, spec.CyclePeriod) / spec.CyclePeriod
		if phase < 0.5 {
			peakHalf++
		} else {
			troughHalf++
		}
	}
	ratio := float64(peakHalf) / float64(troughHalf)
	if ratio < 1.5 {
		t.Errorf("peak/trough arrival ratio = %v, want > 1.5 at amplitude 0.8", ratio)
	}
	// Long-run load is preserved to first order.
	if got := tr.OfferedLoad(); math.Abs(got-1) > 0.15 {
		t.Errorf("offered load = %v, want ~1", got)
	}
}

func TestCyclicValidation(t *testing.T) {
	spec := Default()
	spec.CycleAmplitude = 1.2
	if err := spec.Validate(); err == nil {
		t.Error("amplitude >= 1 accepted")
	}
	spec = Default()
	spec.CycleAmplitude = 0.5
	if err := spec.Validate(); err == nil {
		t.Error("missing period accepted")
	}
	// Time rescaling composes with any renewal process, so cyclic load no
	// longer demands exponential arrivals.
	spec.CyclePeriod = 100
	spec.ArrivalKind = DistNormal
	if err := spec.Validate(); err != nil {
		t.Errorf("cyclic normal arrivals rejected: %v", err)
	}
	// The legacy knob and the envelope share the amplitude budget.
	spec = Default()
	spec.CycleAmplitude = 0.6
	spec.CyclePeriod = 100
	spec.Envelope = Envelope{{Amplitude: 0.5, Period: 40}}
	if err := spec.Validate(); err == nil {
		t.Error("combined amplitude >= 1 accepted")
	}
}

func TestGenerateUnknownDistributions(t *testing.T) {
	spec := Default()
	spec.RuntimeKind = "bogus"
	if _, err := Generate(spec); err == nil {
		t.Error("bogus runtime distribution accepted")
	}
	spec = Default()
	spec.ArrivalKind = "bogus"
	if _, err := Generate(spec); err == nil {
		t.Error("bogus arrival distribution accepted")
	}
}

func TestClassMeansPreserveOverallMean(t *testing.T) {
	for _, skew := range []float64{1, 2, 5, 9} {
		for _, frac := range []float64{0.1, 0.2, 0.5} {
			hi, lo := classMeans(1.0, skew, frac)
			if got := frac*hi + (1-frac)*lo; math.Abs(got-1.0) > 1e-12 {
				t.Errorf("skew %v frac %v: overall mean %v, want 1", skew, frac, got)
			}
			if math.Abs(hi/lo-skew) > 1e-12 {
				t.Errorf("skew %v: realized ratio %v", skew, hi/lo)
			}
		}
	}
}

func TestTruncatedNormalStaysPositive(t *testing.T) {
	spec := Default()
	spec.Jobs = 5000
	spec.ValueCV = 0.9 // aggressive spread forces the truncation path
	spec.DecayCV = 0.9
	tr, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range tr.Tasks {
		if tk.Value <= 0 || tk.Decay <= 0 {
			t.Fatalf("non-positive draw: value %v decay %v", tk.Value, tk.Decay)
		}
	}
}
