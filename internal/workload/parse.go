package workload

import (
	"fmt"

	"repro/internal/core"
)

// cohortParamKeys is the flag grammar for ParseCohort, in core.SplitSpec
// form: name[:key=value,...].
var cohortParamKeys = []string{
	"weight", "clients", "cskew", "batch",
	"arrivals", "acv",
	"runtimes", "rcv", "meanruntime",
	"meanvaluerate", "vskew", "hvf", "vcv",
	"zcf", "dskew", "hdf", "dcv",
}

// ParseCohort parses a command-line cohort spec
//
//	name[:weight=W,clients=N,cskew=S,batch=B,arrivals=KIND,acv=CV,
//	      runtimes=KIND,rcv=CV,meanruntime=M,meanvaluerate=M,
//	      vskew=R,hvf=F,vcv=CV,zcf=Z,dskew=R,hdf=F,dcv=CV]
//
// into a Cohort. Weight defaults to 1; every omitted key is left at its
// zero value and inherits the Spec baseline at generation time. Names are
// lowercased by the shared spec grammar.
func ParseCohort(s string) (Cohort, error) {
	spec, err := core.SplitSpec(s)
	if err != nil {
		return Cohort{}, err
	}
	if err := spec.Check(cohortParamKeys, nil); err != nil {
		return Cohort{}, fmt.Errorf("cohort %s: %w", spec.Name, err)
	}
	c := Cohort{Name: spec.Name}
	if c.Weight, err = spec.Float("weight", 1); err != nil {
		return Cohort{}, err
	}
	if c.Clients, err = spec.Int("clients", 0); err != nil {
		return Cohort{}, err
	}
	if c.ClientSkew, err = spec.Float("cskew", 0); err != nil {
		return Cohort{}, err
	}
	if c.BatchSize, err = spec.Int("batch", 0); err != nil {
		return Cohort{}, err
	}
	c.ArrivalKind = DistKind(spec.Params["arrivals"])
	if c.ArrivalCV, err = spec.Float("acv", 0); err != nil {
		return Cohort{}, err
	}
	c.RuntimeKind = DistKind(spec.Params["runtimes"])
	if c.RuntimeCV, err = spec.Float("rcv", 0); err != nil {
		return Cohort{}, err
	}
	if c.MeanRuntime, err = spec.Float("meanruntime", 0); err != nil {
		return Cohort{}, err
	}
	if c.MeanValueRate, err = spec.Float("meanvaluerate", 0); err != nil {
		return Cohort{}, err
	}
	if c.ValueSkew, err = spec.Float("vskew", 0); err != nil {
		return Cohort{}, err
	}
	if c.HighValueFrac, err = spec.Float("hvf", 0); err != nil {
		return Cohort{}, err
	}
	if c.ValueCV, err = spec.Float("vcv", 0); err != nil {
		return Cohort{}, err
	}
	if c.ZeroCrossFactor, err = spec.Float("zcf", 0); err != nil {
		return Cohort{}, err
	}
	if c.DecaySkew, err = spec.Float("dskew", 0); err != nil {
		return Cohort{}, err
	}
	if c.HighDecayFrac, err = spec.Float("hdf", 0); err != nil {
		return Cohort{}, err
	}
	if c.DecayCV, err = spec.Float("dcv", 0); err != nil {
		return Cohort{}, err
	}
	return c, c.validate()
}
