package workload

import (
	"fmt"
	"sync"

	"repro/internal/task"
)

// Recorder captures the bid stream a live client actually submitted, in
// submission order, as a trace-v2 file. The recorded trace closes the
// sim-vs-live calibration loop: the identical file replays into the
// simulator (sitesim) and back into the TCP service (gridclient -replay),
// so the two systems can be compared on the same tasks in the same order.
//
// Arrival stamps are the caller-supplied submission offsets (simulation
// time units since the run began) and are forced non-decreasing, so the
// trace reader's arrival sort preserves the submission order exactly.
// Safe for concurrent use.
type Recorder struct {
	mu    sync.Mutex
	spec  Spec
	tasks []*task.Task
}

// NewRecorder starts an empty recording annotated with the spec that
// generated (or describes) the stream.
func NewRecorder(spec Spec) *Recorder {
	return &Recorder{spec: spec}
}

// Record appends a snapshot of the task as it was submitted, stamped with
// the given arrival offset. The task is cloned; later mutation by the
// scheduler does not reach the recording.
func (rec *Recorder) Record(t *task.Task, arrival float64) {
	c := t.Clone()
	c.Arrival = arrival
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if n := len(rec.tasks); n > 0 && c.Arrival < rec.tasks[n-1].Arrival {
		c.Arrival = rec.tasks[n-1].Arrival
	}
	rec.tasks = append(rec.tasks, c)
}

// Len returns the number of recorded submissions.
func (rec *Recorder) Len() int {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return len(rec.tasks)
}

// Trace snapshots the recording as a replayable trace. The spec's Jobs
// field is set to the recorded count.
func (rec *Recorder) Trace() *Trace {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	spec := rec.spec
	spec.Jobs = len(rec.tasks)
	out := make([]*task.Task, len(rec.tasks))
	for i, t := range rec.tasks {
		out[i] = t.Clone()
	}
	return &Trace{Spec: spec, Tasks: out}
}

// WriteFile writes the recording as a trace-v2 file.
func (rec *Recorder) WriteFile(path string) error {
	tr := rec.Trace()
	if len(tr.Tasks) == 0 {
		return fmt.Errorf("workload: nothing recorded")
	}
	return tr.WriteFile(path)
}
