package workload

import (
	"math"
	"testing"
)

func TestEnvelopeIdentityWhenEmpty(t *testing.T) {
	var e Envelope
	for _, s := range []float64{0, 1, 17.5, 1e6} {
		if got := e.TimeAt(s); got != s {
			t.Errorf("TimeAt(%v) = %v, want identity", s, got)
		}
		if got := e.Rate(s); got != 1 {
			t.Errorf("Rate(%v) = %v, want 1", s, got)
		}
	}
}

func TestEnvelopeTimeAtInvertsIntegral(t *testing.T) {
	e := Envelope{
		{Amplitude: 0.4, Period: 300},
		{Amplitude: 0.3, Period: 77, Phase: 1.1},
	}
	for _, clock := range []float64{0, 1, 42.5, 299, 1234.56, 9999} {
		s := e.Integral(clock)
		back := e.TimeAt(s)
		if math.Abs(back-clock) > 1e-6 {
			t.Errorf("TimeAt(Integral(%v)) = %v", clock, back)
		}
	}
}

func TestEnvelopeIntegralMatchesRate(t *testing.T) {
	e := Envelope{{Amplitude: 0.6, Period: 50}}
	// Numeric derivative of the integral must match the rate.
	for _, clock := range []float64{3, 10, 25, 48} {
		h := 1e-5
		num := (e.Integral(clock+h) - e.Integral(clock-h)) / (2 * h)
		if math.Abs(num-e.Rate(clock)) > 1e-4 {
			t.Errorf("dIntegral/dt at %v = %v, Rate = %v", clock, num, e.Rate(clock))
		}
	}
}

func TestEnvelopeValidate(t *testing.T) {
	bad := []Envelope{
		{{Amplitude: 0, Period: 10}},
		{{Amplitude: -0.5, Period: 10}},
		{{Amplitude: 0.5, Period: 0}},
		{{Amplitude: 0.5, Period: math.Inf(1)}},
		{{Amplitude: 0.5, Period: 10, Phase: math.NaN()}},
		{{Amplitude: 0.6, Period: 10}, {Amplitude: 0.5, Period: 20}}, // sum >= 1
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d: invalid envelope accepted", i)
		}
	}
	ok := Envelope{{Amplitude: 0.5, Period: 10}, {Amplitude: 0.3, Period: 20, Phase: -2}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid envelope rejected: %v", err)
	}
}

func TestParseEnvelopeRoundTrip(t *testing.T) {
	e, err := ParseEnvelope("amp=0.4,period=300+amp=0.2,period=80,phase=1.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(e) != 2 || e[0].Amplitude != 0.4 || e[1].Phase != 1.5 {
		t.Fatalf("parsed %+v", e)
	}
	back, err := ParseEnvelope(e.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", e.String(), err)
	}
	if len(back) != len(e) || back[0] != e[0] || back[1] != e[1] {
		t.Errorf("round trip %q changed terms: %+v", e.String(), back)
	}

	if got, err := ParseEnvelope(""); err != nil || got != nil {
		t.Errorf("empty spec: got %v, %v", got, err)
	}
	for _, bad := range []string{"amp=0.4", "period=10", "amp=x,period=10", "amp=0.4,period=10,bogus=1"} {
		if _, err := ParseEnvelope(bad); err == nil {
			t.Errorf("ParseEnvelope(%q) accepted", bad)
		}
	}
}

func TestCyclicLoadNonExponential(t *testing.T) {
	// The rescaling construction modulates any renewal process; gamma
	// arrivals under a single-term envelope must still concentrate
	// arrivals in the peak half while preserving long-run load.
	spec := Default()
	spec.Jobs = 20000
	spec.ArrivalKind = DistGamma
	spec.ArrivalCV = 2
	spec.Envelope = Envelope{{Amplitude: 0.8, Period: 4000}}
	tr, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var peakHalf, troughHalf int
	for _, tk := range tr.Tasks {
		phase := math.Mod(tk.Arrival, 4000) / 4000
		if phase < 0.5 {
			peakHalf++
		} else {
			troughHalf++
		}
	}
	if ratio := float64(peakHalf) / float64(troughHalf); ratio < 1.5 {
		t.Errorf("peak/trough ratio = %v, want > 1.5", ratio)
	}
	if got := tr.OfferedLoad(); math.Abs(got-1) > 0.2 {
		t.Errorf("offered load = %v, want ~1", got)
	}
}
