package workload

import (
	"math"
	"testing"
)

func twoCohortSpec() Spec {
	s := Default()
	s.Jobs = 4000
	s.Cohorts = []Cohort{
		{Name: "interactive", Weight: 3, Clients: 4, ClientSkew: 1,
			ArrivalKind: DistGamma, ArrivalCV: 3, MeanRuntime: 20},
		{Name: "batch", Weight: 1, Clients: 2, MeanRuntime: 300, BatchSize: 2},
	}
	return s
}

func TestCohortGenerationShape(t *testing.T) {
	s := twoCohortSpec()
	tr, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tasks) != s.Jobs {
		t.Fatalf("got %d tasks, want %d", len(tr.Tasks), s.Jobs)
	}
	counts := map[string]int{}
	work := map[string]float64{}
	clients := map[string]map[int]bool{}
	prev := 0.0
	for i, tk := range tr.Tasks {
		if int(tk.ID) != i+1 {
			t.Fatalf("task %d has ID %d, want sequential", i, tk.ID)
		}
		if tk.Arrival < prev {
			t.Fatalf("arrivals not sorted at index %d", i)
		}
		prev = tk.Arrival
		if tk.Cohort == "" {
			t.Fatal("cohort label missing")
		}
		counts[tk.Cohort]++
		work[tk.Cohort] += tk.Runtime
		if clients[tk.Cohort] == nil {
			clients[tk.Cohort] = map[int]bool{}
		}
		clients[tk.Cohort][tk.Client] = true
	}
	if counts["interactive"] == 0 || counts["batch"] == 0 {
		t.Fatalf("cohort counts %v, want both present", counts)
	}
	// Weight is a share of offered load: interactive should carry ~3x the
	// batch cohort's work despite 15x shorter tasks.
	ratio := work["interactive"] / work["batch"]
	if ratio < 2 || ratio > 4.5 {
		t.Errorf("work ratio interactive/batch = %.2f, want ~3", ratio)
	}
	if len(clients["interactive"]) != 4 || len(clients["batch"]) != 2 {
		t.Errorf("client spreads %v/%v, want 4/2",
			len(clients["interactive"]), len(clients["batch"]))
	}
}

func TestCohortGenerationDeterministic(t *testing.T) {
	s := twoCohortSpec()
	a, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tasks {
		if *a.Tasks[i] != *b.Tasks[i] {
			t.Fatalf("task %d differs between identical runs:\n%v\n%v", i, a.Tasks[i], b.Tasks[i])
		}
	}
	s.Seed = 99
	c, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Tasks {
		if a.Tasks[i].Runtime == c.Tasks[i].Runtime {
			same++
		}
	}
	if same == len(a.Tasks) {
		t.Error("different seeds produced identical runtimes")
	}
}

func TestCohortOfferedLoadMatchesSpec(t *testing.T) {
	s := twoCohortSpec()
	s.Jobs = 12000
	s.Load = 1.5
	tr, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.OfferedLoad(); math.Abs(got-1.5) > 0.25 {
		t.Errorf("offered load = %v, want ~1.5", got)
	}
}

func TestZipfShares(t *testing.T) {
	sh := zipfShares(4, 1)
	var sum float64
	for _, v := range sh {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("shares sum to %v", sum)
	}
	if !(sh[0] > sh[1] && sh[1] > sh[2] && sh[2] > sh[3]) {
		t.Errorf("shares not decreasing: %v", sh)
	}
	uniform := zipfShares(4, 0)
	for _, v := range uniform {
		if math.Abs(v-0.25) > 1e-12 {
			t.Errorf("skew 0 shares %v, want uniform", uniform)
		}
	}
}

func TestCohortInheritsSpecBaseline(t *testing.T) {
	s := Default()
	s.Jobs = 500
	s.MeanRuntime = 42
	s.Cohorts = []Cohort{{Name: "only", Weight: 1}}
	tr, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, tk := range tr.Tasks {
		mean += tk.Runtime
	}
	mean /= float64(len(tr.Tasks))
	if mean < 30 || mean > 55 {
		t.Errorf("inherited mean runtime %v, want ~42", mean)
	}
}

func TestParseCohort(t *testing.T) {
	c, err := ParseCohort("interactive:weight=2,clients=8,cskew=1,arrivals=gamma,acv=4,meanruntime=1.5")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "interactive" || c.Weight != 2 || c.Clients != 8 ||
		c.ArrivalKind != DistGamma || c.ArrivalCV != 4 || c.MeanRuntime != 1.5 {
		t.Fatalf("parsed %+v", c)
	}
	if c, err := ParseCohort("batch"); err != nil || c.Weight != 1 {
		t.Errorf("bare name: %+v, %v (weight should default to 1)", c, err)
	}
	for _, bad := range []string{
		"",
		"x:weight=0",
		"x:weight=abc",
		"x:bogus=1",
		"x:acv=-2",
	} {
		if _, err := ParseCohort(bad); err == nil {
			t.Errorf("ParseCohort(%q) accepted", bad)
		}
	}
}
