package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"

	"repro/internal/task"
)

// Trace format versions.
const (
	// TraceV1 is the pre-cohort JSON layout: no version field, no task
	// labels, and a lenient bound parser (a missing bound reads as +Inf).
	TraceV1 = 1
	// TraceV2 adds the schema version field and per-task cohort/client
	// labels, and requires every bound — the spec's and each task's — to
	// be explicit: a missing or unparseable bound is a corrupt file, not
	// an unbounded penalty. Write always emits v2.
	TraceV2 = 2
)

// Trace is a generated workload: the spec it came from and the tasks in
// arrival order.
type Trace struct {
	Spec  Spec
	Tasks []*task.Task
}

// Clone returns fresh copies of the trace's tasks, reset to the Submitted
// state. Every simulation run must consume its own clones: tasks carry
// mutable scheduling state.
func (tr *Trace) Clone() []*task.Task {
	out := make([]*task.Task, len(tr.Tasks))
	for i, t := range tr.Tasks {
		out[i] = t.Clone()
	}
	return out
}

// TotalWork sums the minimum run times across the trace.
func (tr *Trace) TotalWork() float64 {
	var w float64
	for _, t := range tr.Tasks {
		w += t.Runtime
	}
	return w
}

// Span returns the arrival interval [first, last].
func (tr *Trace) Span() (first, last float64) {
	if len(tr.Tasks) == 0 {
		return 0, 0
	}
	return tr.Tasks[0].Arrival, tr.Tasks[len(tr.Tasks)-1].Arrival
}

// OfferedLoad returns the trace's realized load factor: total work over the
// arrival span divided by capacity.
func (tr *Trace) OfferedLoad() float64 {
	first, last := tr.Span()
	if last <= first {
		return 0
	}
	return tr.TotalWork() / ((last - first) * float64(tr.Spec.Processors))
}

// MarshalJSON implements json.Marshaler. The penalty bound is encoded as a
// string so +Inf round-trips through JSON.
func (s Spec) MarshalJSON() ([]byte, error) {
	type alias Spec // drop methods to avoid recursion
	return json.Marshal(struct {
		alias
		BoundStr string `json:"bound"`
	}{alias(s), formatBound(s.Bound)})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Spec) UnmarshalJSON(data []byte) error {
	type alias Spec
	var aux struct {
		alias
		BoundStr string `json:"bound"`
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	*s = Spec(aux.alias)
	b, err := parseBound(aux.BoundStr, false)
	if err != nil {
		return err
	}
	s.Bound = b
	return nil
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// parseBound decodes a serialized penalty bound. The strict path (trace
// v2) requires an explicit value, so a truncated or hand-mangled field
// fails loudly instead of silently unbounding the penalty; the lenient
// path (v1 reads and bare Spec JSON) maps a missing bound to +Inf for
// backward compatibility. Both paths reject NaN and -Inf — garbage in any
// era — and accept "inf" (any strconv spelling) as unbounded. Range
// checks beyond that belong to the value-function validation, which
// rejects negative task bounds wherever the trace came from.
func parseBound(s string, strict bool) (float64, error) {
	if s == "" {
		if strict {
			return 0, fmt.Errorf("missing explicit bound (trace v2 requires one)")
		}
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, -1) {
		return 0, fmt.Errorf("bound %q must be \"inf\" or a finite number", s)
	}
	return v, nil
}

// taskJSON is the serialized per-task record.
type taskJSON struct {
	ID      task.ID `json:"id"`
	Arrival float64 `json:"arrival"`
	Runtime float64 `json:"runtime"`
	Value   float64 `json:"value"`
	Decay   float64 `json:"decay"`
	Bound   string  `json:"bound"`
	Class   int     `json:"class"`
	Cohort  string  `json:"cohort,omitempty"`
	Client  int     `json:"client,omitempty"`
}

type traceJSON struct {
	Version int        `json:"version,omitempty"`
	Spec    Spec       `json:"spec"`
	Tasks   []taskJSON `json:"tasks"`
}

// Write serializes the trace as trace-v2 JSON.
func (tr *Trace) Write(w io.Writer) error {
	out := traceJSON{Version: TraceV2, Spec: tr.Spec, Tasks: make([]taskJSON, len(tr.Tasks))}
	for i, t := range tr.Tasks {
		out.Tasks[i] = taskJSON{
			ID:      t.ID,
			Arrival: t.Arrival,
			Runtime: t.Runtime,
			Value:   t.Value,
			Decay:   t.Decay,
			Bound:   formatBound(t.Bound),
			Class:   int(t.Class),
			Cohort:  t.Cohort,
			Client:  t.Client,
		}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("workload: encode trace: %w", err)
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write: v2 files (explicit version
// field) get the strict bound rules, versionless files take the lenient v1
// path, and versions beyond TraceV2 are refused. Tasks are re-sorted by
// arrival (breaking ties by ID) and validated; a recorded stream's
// submission order survives the sort because its arrival stamps are
// non-decreasing.
func Read(r io.Reader) (*Trace, error) {
	var in struct {
		Version int             `json:"version"`
		Spec    json.RawMessage `json:"spec"`
		Tasks   []taskJSON      `json:"tasks"`
	}
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&in); err != nil {
		return nil, fmt.Errorf("workload: decode trace: %w", err)
	}
	if in.Version > TraceV2 {
		return nil, fmt.Errorf("workload: trace version %d is newer than supported v%d", in.Version, TraceV2)
	}
	strict := in.Version >= TraceV2

	tr := &Trace{}
	if len(in.Spec) > 0 {
		if err := json.Unmarshal(in.Spec, &tr.Spec); err != nil {
			return nil, fmt.Errorf("workload: decode trace spec: %w", err)
		}
	}
	if strict {
		// The Spec decoder is shared with bare spec files and stays
		// lenient; v2 re-checks that the spec's bound was explicit.
		var sb struct {
			Bound *string `json:"bound"`
		}
		if len(in.Spec) > 0 {
			if err := json.Unmarshal(in.Spec, &sb); err != nil {
				return nil, fmt.Errorf("workload: decode trace spec: %w", err)
			}
		}
		if sb.Bound == nil {
			return nil, fmt.Errorf("workload: trace v2 spec: missing explicit bound")
		}
		if _, err := parseBound(*sb.Bound, true); err != nil {
			return nil, fmt.Errorf("workload: trace v2 spec bound: %w", err)
		}
	}

	tr.Tasks = make([]*task.Task, len(in.Tasks))
	for i, rec := range in.Tasks {
		bound, err := parseBound(rec.Bound, strict)
		if err != nil {
			return nil, fmt.Errorf("workload: task %d bound: %w", rec.ID, err)
		}
		t := task.New(rec.ID, rec.Arrival, rec.Runtime, rec.Value, rec.Decay, bound)
		t.Class = task.Class(rec.Class)
		t.Cohort = rec.Cohort
		t.Client = rec.Client
		if err := t.Validate(); err != nil {
			return nil, err
		}
		tr.Tasks[i] = t
	}
	sort.SliceStable(tr.Tasks, func(a, b int) bool {
		if tr.Tasks[a].Arrival != tr.Tasks[b].Arrival {
			return tr.Tasks[a].Arrival < tr.Tasks[b].Arrival
		}
		return tr.Tasks[a].ID < tr.Tasks[b].ID
	})
	return tr, nil
}

// WriteFile writes the trace to a file path.
func (tr *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile reads a trace from a file path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
