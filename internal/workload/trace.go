package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"

	"repro/internal/task"
)

// Trace is a generated workload: the spec it came from and the tasks in
// arrival order.
type Trace struct {
	Spec  Spec
	Tasks []*task.Task
}

// Clone returns fresh copies of the trace's tasks, reset to the Submitted
// state. Every simulation run must consume its own clones: tasks carry
// mutable scheduling state.
func (tr *Trace) Clone() []*task.Task {
	out := make([]*task.Task, len(tr.Tasks))
	for i, t := range tr.Tasks {
		out[i] = t.Clone()
	}
	return out
}

// TotalWork sums the minimum run times across the trace.
func (tr *Trace) TotalWork() float64 {
	var w float64
	for _, t := range tr.Tasks {
		w += t.Runtime
	}
	return w
}

// Span returns the arrival interval [first, last].
func (tr *Trace) Span() (first, last float64) {
	if len(tr.Tasks) == 0 {
		return 0, 0
	}
	return tr.Tasks[0].Arrival, tr.Tasks[len(tr.Tasks)-1].Arrival
}

// OfferedLoad returns the trace's realized load factor: total work over the
// arrival span divided by capacity.
func (tr *Trace) OfferedLoad() float64 {
	first, last := tr.Span()
	if last <= first {
		return 0
	}
	return tr.TotalWork() / ((last - first) * float64(tr.Spec.Processors))
}

// MarshalJSON implements json.Marshaler. The penalty bound is encoded as a
// string so +Inf round-trips through JSON.
func (s Spec) MarshalJSON() ([]byte, error) {
	type alias Spec // drop methods to avoid recursion
	return json.Marshal(struct {
		alias
		BoundStr string `json:"bound"`
	}{alias(s), formatBound(s.Bound)})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Spec) UnmarshalJSON(data []byte) error {
	type alias Spec
	var aux struct {
		alias
		BoundStr string `json:"bound"`
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	*s = Spec(aux.alias)
	b, err := parseBound(aux.BoundStr)
	if err != nil {
		return err
	}
	s.Bound = b
	return nil
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func parseBound(s string) (float64, error) {
	if s == "" || s == "inf" || s == "+inf" || s == "Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// taskJSON is the serialized per-task record.
type taskJSON struct {
	ID      task.ID `json:"id"`
	Arrival float64 `json:"arrival"`
	Runtime float64 `json:"runtime"`
	Value   float64 `json:"value"`
	Decay   float64 `json:"decay"`
	Bound   string  `json:"bound"`
	Class   int     `json:"class"`
}

type traceJSON struct {
	Spec  Spec       `json:"spec"`
	Tasks []taskJSON `json:"tasks"`
}

// Write serializes the trace as JSON.
func (tr *Trace) Write(w io.Writer) error {
	out := traceJSON{Spec: tr.Spec, Tasks: make([]taskJSON, len(tr.Tasks))}
	for i, t := range tr.Tasks {
		out.Tasks[i] = taskJSON{
			ID:      t.ID,
			Arrival: t.Arrival,
			Runtime: t.Runtime,
			Value:   t.Value,
			Decay:   t.Decay,
			Bound:   formatBound(t.Bound),
			Class:   int(t.Class),
		}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("workload: encode trace: %w", err)
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write. Tasks are re-sorted by
// arrival (breaking ties by ID) and validated.
func Read(r io.Reader) (*Trace, error) {
	var in traceJSON
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&in); err != nil {
		return nil, fmt.Errorf("workload: decode trace: %w", err)
	}
	tr := &Trace{Spec: in.Spec, Tasks: make([]*task.Task, len(in.Tasks))}
	for i, rec := range in.Tasks {
		bound, err := parseBound(rec.Bound)
		if err != nil {
			return nil, fmt.Errorf("workload: task %d bound: %w", rec.ID, err)
		}
		t := task.New(rec.ID, rec.Arrival, rec.Runtime, rec.Value, rec.Decay, bound)
		t.Class = task.Class(rec.Class)
		if err := t.Validate(); err != nil {
			return nil, err
		}
		tr.Tasks[i] = t
	}
	sort.SliceStable(tr.Tasks, func(a, b int) bool {
		if tr.Tasks[a].Arrival != tr.Tasks[b].Arrival {
			return tr.Tasks[a].Arrival < tr.Tasks[b].Arrival
		}
		return tr.Tasks[a].ID < tr.Tasks[b].ID
	})
	return tr, nil
}

// WriteFile writes the trace to a file path.
func (tr *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile reads a trace from a file path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
