// Package workload generates the synthetic task traces used throughout the
// paper's evaluation (Section 4.1): exponential or normal inter-arrival
// times and durations, optional batch arrivals, bimodal value and decay
// distributions parameterized by skew ratios, and a load-factor knob that
// scales the arrival rate against site capacity.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist samples a distribution.
type Dist interface {
	Sample(r *rand.Rand) float64
	Mean() float64
	String() string
}

// Constant always returns V.
type Constant struct{ V float64 }

// Sample implements Dist.
func (d Constant) Sample(*rand.Rand) float64 { return d.V }

// Mean implements Dist.
func (d Constant) Mean() float64 { return d.V }

// String implements Dist.
func (d Constant) String() string { return fmt.Sprintf("const(%g)", d.V) }

// Exponential has the given mean. Batch-workload trace studies cited by the
// paper find exponential inter-arrival times are common.
type Exponential struct{ M float64 }

// Sample implements Dist.
func (d Exponential) Sample(r *rand.Rand) float64 { return r.ExpFloat64() * d.M }

// Mean implements Dist.
func (d Exponential) Mean() float64 { return d.M }

// String implements Dist.
func (d Exponential) String() string { return fmt.Sprintf("exp(mean=%g)", d.M) }

// Normal is a truncated normal: samples below Min are redrawn (up to a
// bounded number of attempts, then clamped) so runtimes and inter-arrival
// gaps stay positive.
type Normal struct {
	Mu    float64
	Sigma float64
	Min   float64
}

// Sample implements Dist.
func (d Normal) Sample(r *rand.Rand) float64 {
	for i := 0; i < 64; i++ {
		v := r.NormFloat64()*d.Sigma + d.Mu
		if v >= d.Min {
			return v
		}
	}
	return d.Min
}

// Mean implements Dist. The truncation bias is negligible for the
// parameterizations used here (Min several sigma below Mu).
func (d Normal) Mean() float64 { return d.Mu }

// String implements Dist.
func (d Normal) String() string {
	return fmt.Sprintf("normal(mu=%g,sigma=%g,min=%g)", d.Mu, d.Sigma, d.Min)
}

// Uniform samples uniformly from [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (d Uniform) Sample(r *rand.Rand) float64 { return d.Lo + r.Float64()*(d.Hi-d.Lo) }

// Mean implements Dist.
func (d Uniform) Mean() float64 { return (d.Lo + d.Hi) / 2 }

// String implements Dist.
func (d Uniform) String() string { return fmt.Sprintf("uniform(%g,%g)", d.Lo, d.Hi) }

// Pareto is a bounded Pareto with shape Alpha and scale Xm — a heavy-tailed
// alternative for stress-testing schedulers beyond the paper's mixes.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample implements Dist.
func (d Pareto) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return d.Xm / math.Pow(u, 1/d.Alpha)
}

// Mean implements Dist. For Alpha <= 1 the mean diverges; +Inf is returned.
func (d Pareto) Mean() float64 {
	if d.Alpha <= 1 {
		return math.Inf(1)
	}
	return d.Alpha * d.Xm / (d.Alpha - 1)
}

// String implements Dist.
func (d Pareto) String() string { return fmt.Sprintf("pareto(xm=%g,alpha=%g)", d.Xm, d.Alpha) }

// LogNormal has log-space parameters Mu and Sigma.
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// Sample implements Dist.
func (d LogNormal) Sample(r *rand.Rand) float64 {
	return math.Exp(r.NormFloat64()*d.Sigma + d.Mu)
}

// Mean implements Dist.
func (d LogNormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// String implements Dist.
func (d LogNormal) String() string { return fmt.Sprintf("lognormal(mu=%g,sigma=%g)", d.Mu, d.Sigma) }

// DistByName constructs a distribution of the given kind with the given
// mean, using the package's conventional shapes: normal uses cv for its
// coefficient of variation with a minimum of mean/100; pareto uses shape
// 1.5. It exists for CLI flag parsing.
func DistByName(kind string, mean, cv float64) (Dist, error) {
	switch kind {
	case "const", "constant":
		return Constant{V: mean}, nil
	case "exp", "exponential":
		return Exponential{M: mean}, nil
	case "normal":
		return Normal{Mu: mean, Sigma: cv * mean, Min: mean / 100}, nil
	case "uniform":
		return Uniform{Lo: mean / 2, Hi: mean * 3 / 2}, nil
	case "pareto":
		alpha := 1.5
		return Pareto{Xm: mean * (alpha - 1) / alpha, Alpha: alpha}, nil
	case "lognormal":
		sigma := math.Sqrt(math.Log(1 + cv*cv))
		return LogNormal{Mu: math.Log(mean) - sigma*sigma/2, Sigma: sigma}, nil
	default:
		return nil, fmt.Errorf("workload: unknown distribution %q", kind)
	}
}
