// Package workload generates the synthetic task traces used throughout the
// paper's evaluation (Section 4.1): exponential or normal inter-arrival
// times and durations, optional batch arrivals, bimodal value and decay
// distributions parameterized by skew ratios, and a load-factor knob that
// scales the arrival rate against site capacity.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist samples a distribution.
type Dist interface {
	Sample(r *rand.Rand) float64
	Mean() float64
	String() string
}

// Constant always returns V.
type Constant struct{ V float64 }

// Sample implements Dist.
func (d Constant) Sample(*rand.Rand) float64 { return d.V }

// Mean implements Dist.
func (d Constant) Mean() float64 { return d.V }

// String implements Dist.
func (d Constant) String() string { return fmt.Sprintf("const(%g)", d.V) }

// Exponential has the given mean. Batch-workload trace studies cited by the
// paper find exponential inter-arrival times are common.
type Exponential struct{ M float64 }

// Sample implements Dist.
func (d Exponential) Sample(r *rand.Rand) float64 { return r.ExpFloat64() * d.M }

// Mean implements Dist.
func (d Exponential) Mean() float64 { return d.M }

// String implements Dist.
func (d Exponential) String() string { return fmt.Sprintf("exp(mean=%g)", d.M) }

// Normal is a truncated normal: samples below Min are redrawn (up to a
// bounded number of attempts, then clamped) so runtimes and inter-arrival
// gaps stay positive.
type Normal struct {
	Mu    float64
	Sigma float64
	Min   float64
}

// Sample implements Dist.
func (d Normal) Sample(r *rand.Rand) float64 {
	for i := 0; i < 64; i++ {
		v := r.NormFloat64()*d.Sigma + d.Mu
		if v >= d.Min {
			return v
		}
	}
	return d.Min
}

// Mean implements Dist. The truncation bias is negligible for the
// parameterizations used here (Min several sigma below Mu).
func (d Normal) Mean() float64 { return d.Mu }

// String implements Dist.
func (d Normal) String() string {
	return fmt.Sprintf("normal(mu=%g,sigma=%g,min=%g)", d.Mu, d.Sigma, d.Min)
}

// Uniform samples uniformly from [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (d Uniform) Sample(r *rand.Rand) float64 { return d.Lo + r.Float64()*(d.Hi-d.Lo) }

// Mean implements Dist.
func (d Uniform) Mean() float64 { return (d.Lo + d.Hi) / 2 }

// String implements Dist.
func (d Uniform) String() string { return fmt.Sprintf("uniform(%g,%g)", d.Lo, d.Hi) }

// Pareto is a bounded Pareto with shape Alpha and scale Xm — a heavy-tailed
// alternative for stress-testing schedulers beyond the paper's mixes.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample implements Dist.
func (d Pareto) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return d.Xm / math.Pow(u, 1/d.Alpha)
}

// Mean implements Dist. For Alpha <= 1 the mean diverges; +Inf is returned.
func (d Pareto) Mean() float64 {
	if d.Alpha <= 1 {
		return math.Inf(1)
	}
	return d.Alpha * d.Xm / (d.Alpha - 1)
}

// String implements Dist.
func (d Pareto) String() string { return fmt.Sprintf("pareto(xm=%g,alpha=%g)", d.Xm, d.Alpha) }

// Gamma has shape K and scale Theta. Shapes below one give inter-arrival
// gaps with coefficient of variation above one — the bursty regime: draws
// cluster near zero with occasional long gaps, so arrivals arrive in
// clumps separated by lulls.
type Gamma struct {
	K     float64
	Theta float64
}

// Sample implements Dist using Marsaglia-Tsang squeeze rejection, with the
// standard boost for shapes below one. Deterministic in the *rand.Rand.
func (d Gamma) Sample(r *rand.Rand) float64 {
	if d.K < 1 {
		// Gamma(k) = Gamma(k+1) * U^{1/k}.
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return gammaMT(r, d.K+1) * math.Pow(u, 1/d.K) * d.Theta
	}
	return gammaMT(r, d.K) * d.Theta
}

// gammaMT draws a standard Gamma(k), k >= 1, by Marsaglia-Tsang (2000).
func gammaMT(r *rand.Rand, k float64) float64 {
	d := k - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Mean implements Dist.
func (d Gamma) Mean() float64 { return d.K * d.Theta }

// String implements Dist.
func (d Gamma) String() string { return fmt.Sprintf("gamma(k=%g,theta=%g)", d.K, d.Theta) }

// Weibull has shape K and scale Lambda. Shapes below one are heavy-tailed
// (CV > 1); shapes above one concentrate around the scale.
type Weibull struct {
	K      float64
	Lambda float64
}

// Sample implements Dist by inversion.
func (d Weibull) Sample(r *rand.Rand) float64 {
	u := 1 - r.Float64() // (0, 1]
	return d.Lambda * math.Pow(-math.Log(u), 1/d.K)
}

// Mean implements Dist.
func (d Weibull) Mean() float64 { return d.Lambda * math.Gamma(1+1/d.K) }

// String implements Dist.
func (d Weibull) String() string { return fmt.Sprintf("weibull(k=%g,lambda=%g)", d.K, d.Lambda) }

// weibullShapeForCV solves CV^2(k) = Gamma(1+2/k)/Gamma(1+1/k)^2 - 1 for
// the shape k by bisection (the CV is strictly decreasing in k).
func weibullShapeForCV(cv float64) (float64, error) {
	cvOf := func(k float64) float64 {
		m := math.Gamma(1 + 1/k)
		return math.Sqrt(math.Gamma(1+2/k)/(m*m) - 1)
	}
	lo, hi := 0.05, 60.0 // CV from ~0.02 (k=60) up to ~1e8 (k=0.05)
	if cv > cvOf(lo) || cv < cvOf(hi) {
		return 0, fmt.Errorf("workload: weibull cv %g outside the realizable range [%.3g, %.3g]", cv, cvOf(hi), cvOf(lo))
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if cvOf(mid) > cv {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// LogNormal has log-space parameters Mu and Sigma.
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// Sample implements Dist.
func (d LogNormal) Sample(r *rand.Rand) float64 {
	return math.Exp(r.NormFloat64()*d.Sigma + d.Mu)
}

// Mean implements Dist.
func (d LogNormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// String implements Dist.
func (d LogNormal) String() string { return fmt.Sprintf("lognormal(mu=%g,sigma=%g)", d.Mu, d.Sigma) }

// DistByName constructs a distribution of the given kind with the given
// mean, using the package's conventional shapes: normal uses cv for its
// coefficient of variation with a minimum of mean/100; gamma and weibull
// derive their shape from cv (cv > 1 is the bursty regime); pareto derives
// its tail index alpha from cv when one is given (alpha 1.5, infinite
// variance, when cv is zero). It exists for CLI flag parsing. A negative or
// non-finite cv is rejected; cv 0 means "the kind's default shape".
func DistByName(kind string, mean, cv float64) (Dist, error) {
	if cv < 0 || math.IsNaN(cv) || math.IsInf(cv, 0) {
		return nil, fmt.Errorf("workload: cv %v must be non-negative and finite", cv)
	}
	switch kind {
	case "const", "constant":
		return Constant{V: mean}, nil
	case "exp", "exponential":
		return Exponential{M: mean}, nil
	case "normal":
		return Normal{Mu: mean, Sigma: cv * mean, Min: mean / 100}, nil
	case "uniform":
		return Uniform{Lo: mean / 2, Hi: mean * 3 / 2}, nil
	case "pareto":
		// CV^2 = 1/(alpha(alpha-2)) for alpha > 2, so any positive finite
		// CV is realizable by alpha = 1 + sqrt(1 + 1/CV^2) > 2. CV 0 would
		// need alpha = +Inf (and CV = +Inf sits exactly at alpha = 2, where
		// the variance diverges); cv 0 keeps the conventional heavy tail.
		alpha := 1.5
		if cv > 0 {
			alpha = 1 + math.Sqrt(1+1/(cv*cv))
		}
		return Pareto{Xm: mean * (alpha - 1) / alpha, Alpha: alpha}, nil
	case "gamma":
		// CV^2 = 1/k: shape from cv, scale from the mean. cv 0 defaults to
		// the exponential special case k=1.
		k := 1.0
		if cv > 0 {
			k = 1 / (cv * cv)
		}
		return Gamma{K: k, Theta: mean / k}, nil
	case "weibull":
		k := 1.0 // exponential special case
		if cv > 0 {
			var err error
			if k, err = weibullShapeForCV(cv); err != nil {
				return nil, err
			}
		}
		return Weibull{K: k, Lambda: mean / math.Gamma(1+1/k)}, nil
	case "lognormal":
		sigma := math.Sqrt(math.Log(1 + cv*cv))
		return LogNormal{Mu: math.Log(mean) - sigma*sigma/2, Sigma: sigma}, nil
	default:
		return nil, fmt.Errorf("workload: unknown distribution %q", kind)
	}
}
