package workload

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenV1Lenient pins the v1 compatibility contract: a versionless
// trace file still reads, a missing spec bound and a missing task bound
// both map to +Inf, and tasks re-sort by arrival.
func TestGoldenV1Lenient(t *testing.T) {
	tr, err := ReadFile(filepath.Join("testdata", "golden_v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tasks) != 3 {
		t.Fatalf("got %d tasks, want 3", len(tr.Tasks))
	}
	if !math.IsInf(tr.Spec.Bound, 1) {
		t.Errorf("spec bound %v, want +Inf for a missing v1 bound", tr.Spec.Bound)
	}
	// File order is 2, 1, 3; arrival order is 1, 2, 3.
	for i, want := range []uint64{1, 2, 3} {
		if uint64(tr.Tasks[i].ID) != want {
			t.Fatalf("position %d holds task %d, want %d", i, tr.Tasks[i].ID, want)
		}
	}
	if got := tr.Tasks[0].Bound; got != 40.5 {
		t.Errorf("task 1 bound %v, want 40.5", got)
	}
	if !math.IsInf(tr.Tasks[2].Bound, 1) {
		t.Errorf("task 3 bound %v, want +Inf for a missing v1 bound", tr.Tasks[2].Bound)
	}
	if tr.Tasks[0].Cohort != "" || tr.Tasks[0].Client != 0 {
		t.Errorf("v1 task grew labels: %q/%d", tr.Tasks[0].Cohort, tr.Tasks[0].Client)
	}
}

// TestGoldenV2ByteStable regenerates the frozen fixture's spec and
// requires byte-identical output: the generator's RNG consumption, the
// cohort merge order, and the trace encoding are all pinned. If this fails
// after an intentional change, regenerate testdata/golden_v2.json and
// say so in the commit.
func TestGoldenV2ByteStable(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_v2.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec := Default()
	spec.Jobs = 12
	spec.Seed = 42
	spec.Processors = 4
	spec.Load = 1.2
	spec.Bound = 80
	spec.Envelope = Envelope{{Amplitude: 0.3, Period: 200}, {Amplitude: 0.2, Period: 60, Phase: 0.5}}
	spec.Cohorts = []Cohort{
		{Name: "interactive", Weight: 2, Clients: 3, ClientSkew: 1,
			ArrivalKind: DistGamma, ArrivalCV: 3, MeanRuntime: 20},
		{Name: "batch", Weight: 1, Clients: 2, MeanRuntime: 120, BatchSize: 2},
	}
	tr, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("generated trace no longer matches testdata/golden_v2.json (len %d vs %d)",
			buf.Len(), len(want))
	}
}

// TestGoldenV2Read pins the decode side: labels survive, the strict bound
// path accepts the file, and the spec round-trips.
func TestGoldenV2Read(t *testing.T) {
	tr, err := ReadFile(filepath.Join("testdata", "golden_v2.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tasks) != 12 {
		t.Fatalf("got %d tasks, want 12", len(tr.Tasks))
	}
	if tr.Spec.Bound != 80 {
		t.Errorf("spec bound %v, want 80", tr.Spec.Bound)
	}
	if len(tr.Spec.Cohorts) != 2 || len(tr.Spec.Envelope) != 2 {
		t.Fatalf("spec lost cohorts/envelope: %d/%d", len(tr.Spec.Cohorts), len(tr.Spec.Envelope))
	}
	seen := map[string]bool{}
	for _, tk := range tr.Tasks {
		if tk.Cohort == "" {
			t.Fatalf("task %d lost its cohort label", tk.ID)
		}
		seen[tk.Cohort] = true
		if tk.Bound != 80 {
			t.Errorf("task %d bound %v, want 80", tk.ID, tk.Bound)
		}
	}
	// The short fixture ends before the slow batch cohort's first arrival;
	// the high-rate cohort must dominate it.
	if !seen["interactive"] {
		t.Errorf("cohort labels %v, want interactive present", seen)
	}
}

// TestV2StrictBounds pins the strict-parse satellite: v2 files with a
// missing or garbage bound are corrupt, not unbounded.
func TestV2StrictBounds(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"missing spec bound", `{"version":2,"spec":{"jobs":1},"tasks":[]}`},
		{"empty spec bound", `{"version":2,"spec":{"bound":""},"tasks":[]}`},
		{"garbage spec bound", `{"version":2,"spec":{"bound":"lots"},"tasks":[]}`},
		{"nan spec bound", `{"version":2,"spec":{"bound":"NaN"},"tasks":[]}`},
		{"missing task bound", `{"version":2,"spec":{"bound":"inf"},"tasks":[{"id":1,"runtime":5}]}`},
		{"future version", `{"version":9,"spec":{"bound":"inf"},"tasks":[]}`},
	}
	for _, tc := range cases {
		if _, err := Read(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The same missing bounds stay legal in versionless (v1) files.
	v1 := `{"spec":{"jobs":1},"tasks":[{"id":1,"runtime":5,"value":1,"decay":0.1}]}`
	if _, err := Read(strings.NewReader(v1)); err != nil {
		t.Errorf("lenient v1 read failed: %v", err)
	}
}
