package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/task"
)

// DistKind selects a stock distribution shape for runtimes or
// inter-arrival gaps.
type DistKind string

// Stock distribution kinds.
const (
	DistExponential DistKind = "exp"
	DistNormal      DistKind = "normal"
	DistConstant    DistKind = "const"
	DistPareto      DistKind = "pareto"
	DistLogNormal   DistKind = "lognormal"
	DistGamma       DistKind = "gamma"
	DistWeibull     DistKind = "weibull"
)

// Spec describes a synthetic trace per the paper's methodology
// (Section 4.1). All defaults reproduce the "unless otherwise specified"
// settings: 20% of jobs draw from the high value_i/runtime_i class,
// exponential inter-arrival times and durations, and a load factor of one.
type Spec struct {
	Jobs       int   `json:"jobs"`
	Processors int   `json:"processors"`
	Seed       int64 `json:"seed"`

	// Load is the load factor: total requested work per unit time divided
	// by total capacity. The arrival rate is Load*Processors/MeanRuntime.
	Load float64 `json:"load"`

	// MeanRuntime is the mean minimum run time in simulation time units.
	MeanRuntime float64  `json:"mean_runtime"`
	RuntimeKind DistKind `json:"runtime_kind"`
	// RuntimeCV is the coefficient of variation for normal (and lognormal)
	// runtimes; ignored for exponential.
	RuntimeCV float64 `json:"runtime_cv"`

	ArrivalKind DistKind `json:"arrival_kind"`
	// ArrivalCV is the coefficient of variation for normal inter-arrival
	// gaps; ignored for exponential.
	ArrivalCV float64 `json:"arrival_cv"`
	// BatchSize submits this many jobs per arrival instant (the Millennium
	// mixes submit 16 jobs in a batch on each arrival). 0 or 1 disables
	// batching. The inter-arrival mean scales by BatchSize so the load
	// factor is preserved.
	BatchSize int `json:"batch_size"`

	// MeanValueRate is the mean of value_i/runtime_i across the mix.
	MeanValueRate float64 `json:"mean_value_rate"`
	// ValueSkew is the ratio of the high class's mean value rate to the low
	// class's (the value skew ratio). 1 collapses the classes.
	ValueSkew float64 `json:"value_skew"`
	// HighValueFrac is the fraction of jobs in the high value class (0.2).
	HighValueFrac float64 `json:"high_value_frac"`
	// ValueCV is the within-class coefficient of variation of the normal
	// value-rate distributions.
	ValueCV float64 `json:"value_cv"`

	// ZeroCrossFactor calibrates the mean decay rate: an average task's
	// value reaches zero after ZeroCrossFactor mean runtimes of delay. The
	// paper does not publish its decay magnitudes; this single knob is the
	// substitution, recorded in EXPERIMENTS.md.
	ZeroCrossFactor float64 `json:"zero_cross_factor"`
	// DecaySkew is the decay skew ratio between the high- and low-decay
	// class means. 1 plus DecayCV 0 gives the uniform decay of the
	// Millennium mixes.
	DecaySkew float64 `json:"decay_skew"`
	// HighDecayFrac is the fraction of jobs in the high decay class. Decay
	// class membership is drawn independently of value class ("decay rates
	// are not correlated with value", Section 5.3).
	HighDecayFrac float64 `json:"high_decay_frac"`
	// DecayCV is the within-class coefficient of variation of decay rates.
	DecayCV float64 `json:"decay_cv"`

	// CycleAmplitude modulates the arrival rate sinusoidally in [0, 1):
	// rate(t) = base * (1 + amplitude * sin(2*pi*t/CyclePeriod)). Zero
	// disables modulation. Diurnal load cycles are the canonical stress for
	// capacity-adaptive providers. It is the legacy single-period knob,
	// kept for flag compatibility; Envelope generalizes it.
	CycleAmplitude float64 `json:"cycle_amplitude"`
	// CyclePeriod is the modulation period in simulation time units.
	CyclePeriod float64 `json:"cycle_period"`

	// Envelope stacks additional sinusoidal rate-modulation terms on top
	// of CycleAmplitude (either or both may be set; amplitudes must sum
	// below 1). Applied by time rescaling, so it composes with any arrival
	// kind, including the bursty Gamma/Weibull processes.
	Envelope Envelope `json:"envelope,omitempty"`

	// Cohorts, when non-empty, replaces the single homogeneous stream
	// with a mix of named traffic classes; see Cohort. The Spec's own
	// distribution fields become the baseline each cohort inherits from,
	// and Load/Processors still calibrate the total offered load.
	Cohorts []Cohort `json:"cohorts,omitempty"`

	// Bound is the penalty bound applied to every task: 0 reproduces
	// Millennium's functions bounded at zero; math.Inf(1) is the unbounded
	// case. (JSON encodes +Inf as the string "inf"; see MarshalJSON.)
	Bound float64 `json:"-"`
}

// Default returns the paper's baseline mix: exponential arrivals and
// durations, load factor 1, 20% high-value jobs, mean value rate 1, decay
// calibrated so an average task's value zeroes after 3 mean runtimes.
func Default() Spec {
	return Spec{
		Jobs:            5000,
		Processors:      16,
		Seed:            1,
		Load:            1.0,
		MeanRuntime:     100,
		RuntimeKind:     DistExponential,
		RuntimeCV:       0.3,
		ArrivalKind:     DistExponential,
		ArrivalCV:       0.3,
		BatchSize:       1,
		MeanValueRate:   1.0,
		ValueSkew:       1.0,
		HighValueFrac:   0.2,
		ValueCV:         0.1,
		ZeroCrossFactor: 3.0,
		DecaySkew:       1.0,
		HighDecayFrac:   0.2,
		DecayCV:         0.1,
		Bound:           math.Inf(1),
	}
}

// Millennium returns the Figure 3 mix: normal inter-arrival times and
// durations with 16 jobs submitted per batch, uniform decay rates, and
// penalties bounded at zero.
func Millennium() Spec {
	s := Default()
	s.RuntimeKind = DistNormal
	s.ArrivalKind = DistNormal
	s.BatchSize = 16
	s.DecaySkew = 1.0
	s.DecayCV = 0
	s.Bound = 0
	return s
}

// badCV reports whether a coefficient-of-variation knob is unusable.
func badCV(v float64) bool { return v < 0 || math.IsNaN(v) || math.IsInf(v, 0) }

// Validate reports whether the spec is generable.
func (s Spec) Validate() error {
	switch {
	case s.Jobs <= 0:
		return fmt.Errorf("workload: jobs %d must be positive", s.Jobs)
	case s.Processors <= 0:
		return fmt.Errorf("workload: processors %d must be positive", s.Processors)
	case !(s.Load > 0) || math.IsInf(s.Load, 0):
		return fmt.Errorf("workload: load %g must be positive and finite", s.Load)
	case s.MeanRuntime <= 0:
		return fmt.Errorf("workload: mean runtime %g must be positive", s.MeanRuntime)
	case badCV(s.RuntimeCV) || badCV(s.ArrivalCV) || badCV(s.ValueCV) || badCV(s.DecayCV):
		return fmt.Errorf("workload: CVs (%g, %g, %g, %g) must be non-negative and finite",
			s.RuntimeCV, s.ArrivalCV, s.ValueCV, s.DecayCV)
	case s.MeanValueRate <= 0:
		return fmt.Errorf("workload: mean value rate %g must be positive", s.MeanValueRate)
	case s.ValueSkew < 1 || s.DecaySkew < 1:
		return fmt.Errorf("workload: skew ratios (%g, %g) must be >= 1", s.ValueSkew, s.DecaySkew)
	case s.HighValueFrac < 0 || s.HighValueFrac > 1 || s.HighDecayFrac < 0 || s.HighDecayFrac > 1:
		return fmt.Errorf("workload: class fractions must lie in [0,1]")
	case s.ZeroCrossFactor <= 0:
		return fmt.Errorf("workload: zero-cross factor %g must be positive", s.ZeroCrossFactor)
	case s.Bound < 0 || math.IsNaN(s.Bound):
		return fmt.Errorf("workload: bound %g must be non-negative", s.Bound)
	case s.CycleAmplitude < 0 || s.CycleAmplitude >= 1:
		return fmt.Errorf("workload: cycle amplitude %g must lie in [0, 1)", s.CycleAmplitude)
	case s.CycleAmplitude > 0 && s.CyclePeriod <= 0:
		return fmt.Errorf("workload: cycle period %g must be positive with a cycle amplitude", s.CyclePeriod)
	}
	if err := s.Envelope.Validate(); err != nil {
		return err
	}
	// The legacy term and the explicit envelope must jointly keep the rate
	// positive.
	if a := s.CycleAmplitude + s.Envelope.TotalAmplitude(); a >= 1 {
		return fmt.Errorf("workload: total modulation amplitude %g must stay below 1", a)
	}
	seen := make(map[string]bool, len(s.Cohorts))
	for _, c := range s.Cohorts {
		if err := c.validate(); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("workload: duplicate cohort name %q", c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// effectiveEnvelope folds the legacy CycleAmplitude/CyclePeriod knob into
// the explicit envelope terms.
func (s Spec) effectiveEnvelope() Envelope {
	if s.CycleAmplitude == 0 {
		return s.Envelope
	}
	env := make(Envelope, 0, len(s.Envelope)+1)
	env = append(env, EnvelopeTerm{Amplitude: s.CycleAmplitude, Period: s.CyclePeriod})
	return append(env, s.Envelope...)
}

// classMeans splits an overall mean into high/low class means with the
// given skew ratio and high-class fraction, preserving the overall mean:
// frac*hi + (1-frac)*lo = mean, hi = skew*lo.
func classMeans(mean, skew, frac float64) (hi, lo float64) {
	lo = mean / (frac*skew + (1 - frac))
	return skew * lo, lo
}

// MeanDecayRate returns the mix's mean decay rate implied by the
// calibration knob: mean value / (ZeroCrossFactor * MeanRuntime).
func (s Spec) MeanDecayRate() float64 {
	return s.MeanValueRate * s.MeanRuntime / (s.ZeroCrossFactor * s.MeanRuntime)
}

// ArrivalRate returns jobs per unit time implied by the load factor.
func (s Spec) ArrivalRate() float64 {
	return s.Load * float64(s.Processors) / s.MeanRuntime
}

func (s Spec) runtimeDist() (Dist, error) {
	return DistByName(string(s.RuntimeKind), s.MeanRuntime, s.RuntimeCV)
}

func (s Spec) arrivalDist() (Dist, error) {
	batch := s.BatchSize
	if batch < 1 {
		batch = 1
	}
	mean := float64(batch) / s.ArrivalRate()
	return DistByName(string(s.ArrivalKind), mean, s.ArrivalCV)
}

// Generate builds the trace: Jobs tasks with arrival times, runtimes, and
// bimodal value/decay draws, sorted by arrival. Generation is deterministic
// in Seed. A spec with cohorts merges one independent renewal stream per
// (cohort, client) pair; otherwise the single-stream path below runs.
func Generate(s Spec) (*Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s.Cohorts) > 0 {
		return generateCohorts(s)
	}
	runtimes, err := s.runtimeDist()
	if err != nil {
		return nil, err
	}
	arrivals, err := s.arrivalDist()
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(s.Seed))

	hiV, loV := classMeans(s.MeanValueRate, s.ValueSkew, s.HighValueFrac)
	hiD, loD := classMeans(s.MeanDecayRate(), s.DecaySkew, s.HighDecayFrac)

	batch := s.BatchSize
	if batch < 1 {
		batch = 1
	}

	// The envelope modulates arrivals by time rescaling: gaps accumulate
	// in operational time and the envelope's cumulative-rate inverse maps
	// them onto the clock (see Envelope). With no envelope the map is the
	// identity.
	env := s.effectiveEnvelope()
	op := 0.0

	tasks := make([]*task.Task, 0, s.Jobs)
	clock := 0.0
	for len(tasks) < s.Jobs {
		op += math.Max(0, arrivals.Sample(r))
		clock = env.TimeAt(op)
		for b := 0; b < batch && len(tasks) < s.Jobs; b++ {
			id := task.ID(len(tasks) + 1)
			runtime := math.Max(1e-6, runtimes.Sample(r))

			class := task.LowValue
			vMean := loV
			if r.Float64() < s.HighValueFrac {
				class = task.HighValue
				vMean = hiV
			}
			rate := truncatedNormal(r, vMean, s.ValueCV*vMean)
			value := rate * runtime

			dMean := loD
			if r.Float64() < s.HighDecayFrac {
				dMean = hiD
			}
			decay := truncatedNormal(r, dMean, s.DecayCV*dMean)

			t := task.New(id, clock, runtime, value, decay, s.Bound)
			t.Class = class
			tasks = append(tasks, t)
		}
	}
	return &Trace{Spec: s, Tasks: tasks}, nil
}

// truncatedNormal redraws below a small positive floor so rates and decays
// stay strictly positive; sigma 0 returns the mean directly.
func truncatedNormal(r *rand.Rand, mean, sigma float64) float64 {
	if sigma == 0 {
		return mean
	}
	floor := mean / 100
	for i := 0; i < 64; i++ {
		v := r.NormFloat64()*sigma + mean
		if v >= floor {
			return v
		}
	}
	return floor
}
