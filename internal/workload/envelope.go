package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// EnvelopeTerm is one sinusoidal component of a multi-period arrival-rate
// envelope: rate(t) = base * (1 + sum_j A_j sin(2*pi*t/P_j + phi_j)).
// Stacking a long diurnal period with shorter harmonics reproduces the
// peak/trough and lunch-dip shapes of production traffic.
type EnvelopeTerm struct {
	Amplitude float64 `json:"amplitude"`
	Period    float64 `json:"period"`
	Phase     float64 `json:"phase,omitempty"` // radians
}

// Envelope is a sum of sinusoidal rate-modulation terms. Amplitudes must
// sum below one so the instantaneous rate stays positive. The zero-length
// envelope is the unmodulated (stationary) process.
//
// Arrivals are modulated by time rescaling rather than thinning: the
// renewal process generates gaps in "operational time" and the cumulative
// envelope integral maps them onto the clock, compressing gaps where the
// rate is high. Unlike Lewis-Shedler thinning this works for any renewal
// process (Gamma, Weibull, normal), preserving the gap CV structure in
// operational time; for exponential gaps it is exactly a non-homogeneous
// Poisson process.
type Envelope []EnvelopeTerm

// Rate returns the relative rate multiplier at time t (1 with no terms).
func (e Envelope) Rate(t float64) float64 {
	r := 1.0
	for _, term := range e {
		r += term.Amplitude * math.Sin(2*math.Pi*t/term.Period+term.Phase)
	}
	return r
}

// Integral returns the cumulative rate integral Lambda(t) = ∫₀ᵗ Rate(s) ds.
func (e Envelope) Integral(t float64) float64 {
	v := t
	for _, term := range e {
		w := 2 * math.Pi / term.Period
		v += term.Amplitude / w * (math.Cos(term.Phase) - math.Cos(w*t+term.Phase))
	}
	return v
}

// TimeAt inverts the integral: the clock time t with Integral(t) = s, for
// an operational-time coordinate s >= 0. Integral is strictly increasing
// (amplitudes sum below 1), so bisection on a conservative bracket
// converges deterministically.
func (e Envelope) TimeAt(s float64) float64 {
	if len(e) == 0 {
		return s
	}
	// |Integral(t) - t| <= sum_j A_j P_j / pi, a global bound.
	slack := 0.0
	for _, term := range e {
		slack += term.Amplitude * term.Period / math.Pi
	}
	lo, hi := math.Max(0, s-slack), s+slack
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if e.Integral(mid) < s {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// TotalAmplitude sums the terms' amplitudes.
func (e Envelope) TotalAmplitude() float64 {
	var a float64
	for _, term := range e {
		a += term.Amplitude
	}
	return a
}

// Validate reports whether the envelope keeps the rate positive.
func (e Envelope) Validate() error {
	for i, term := range e {
		switch {
		case term.Amplitude <= 0 || math.IsNaN(term.Amplitude) || math.IsInf(term.Amplitude, 0):
			return fmt.Errorf("workload: envelope term %d amplitude %g must be positive and finite", i, term.Amplitude)
		case term.Period <= 0 || math.IsNaN(term.Period) || math.IsInf(term.Period, 0):
			return fmt.Errorf("workload: envelope term %d period %g must be positive and finite", i, term.Period)
		case math.IsNaN(term.Phase) || math.IsInf(term.Phase, 0):
			return fmt.Errorf("workload: envelope term %d phase %g must be finite", i, term.Phase)
		}
	}
	if a := e.TotalAmplitude(); a >= 1 {
		return fmt.Errorf("workload: envelope amplitudes sum to %g, must stay below 1", a)
	}
	return nil
}

// String implements fmt.Stringer in the ParseEnvelope grammar.
func (e Envelope) String() string {
	terms := make([]string, len(e))
	for i, term := range e {
		terms[i] = fmt.Sprintf("amp=%g,period=%g", term.Amplitude, term.Period)
		if term.Phase != 0 {
			terms[i] += fmt.Sprintf(",phase=%g", term.Phase)
		}
	}
	return strings.Join(terms, "+")
}

// ParseEnvelope parses the CLI grammar "amp=A,period=P[,phase=F]" with
// multiple terms joined by '+', e.g. "amp=0.6,period=4000+amp=0.2,period=500".
// The empty string is the empty envelope.
func ParseEnvelope(s string) (Envelope, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var env Envelope
	for _, part := range strings.Split(s, "+") {
		var term EnvelopeTerm
		for _, kv := range strings.Split(part, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("workload: envelope term %q: want key=value", kv)
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: envelope %s=%q: %w", key, val, err)
			}
			switch key {
			case "amp", "amplitude":
				term.Amplitude = f
			case "period":
				term.Period = f
			case "phase":
				term.Phase = f
			default:
				return nil, fmt.Errorf("workload: envelope key %q (want amp, period, phase)", key)
			}
		}
		env = append(env, term)
	}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	return env, nil
}
