package workload

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/task"
)

// Cohort is one named traffic class inside a Spec: a population of clients
// sharing an arrival process and runtime/value/decay distributions. A mix
// of cohorts replaces the single homogeneous stream — e.g. an
// "interactive" cohort of many low-rate, high-decay clients with bursty
// Gamma arrivals next to a "batch" cohort of few heavy-runtime clients.
//
// Zero-valued fields inherit the Spec's baseline, so a cohort only states
// what makes it different. Weight is the cohort's share of the offered
// load (work per unit time), not of the task count: cohorts with longer
// tasks submit proportionally fewer of them, keeping the Spec's load
// factor exact whatever the mix.
type Cohort struct {
	Name string `json:"name"`
	// Weight is the cohort's share of offered load, normalized over all
	// cohorts.
	Weight float64 `json:"weight"`
	// Clients is the number of distinct client streams (default 1). Each
	// client runs an independent arrival process; tasks are labeled with
	// their client index for per-client analysis and replay.
	Clients int `json:"clients,omitempty"`
	// ClientSkew is the Zipf exponent of the per-client rate shares:
	// 0 splits the cohort's rate evenly, 1 gives the classic 1/rank skew
	// where a few clients dominate.
	ClientSkew float64 `json:"client_skew,omitempty"`

	ArrivalKind DistKind `json:"arrival_kind,omitempty"`
	ArrivalCV   float64  `json:"arrival_cv,omitempty"`
	BatchSize   int      `json:"batch_size,omitempty"`

	MeanRuntime float64  `json:"mean_runtime,omitempty"`
	RuntimeKind DistKind `json:"runtime_kind,omitempty"`
	RuntimeCV   float64  `json:"runtime_cv,omitempty"`

	MeanValueRate float64 `json:"mean_value_rate,omitempty"`
	ValueSkew     float64 `json:"value_skew,omitempty"`
	HighValueFrac float64 `json:"high_value_frac,omitempty"`
	ValueCV       float64 `json:"value_cv,omitempty"`

	ZeroCrossFactor float64 `json:"zero_cross_factor,omitempty"`
	DecaySkew       float64 `json:"decay_skew,omitempty"`
	HighDecayFrac   float64 `json:"high_decay_frac,omitempty"`
	DecayCV         float64 `json:"decay_cv,omitempty"`
}

// validate checks the cohort's own fields; inheritance gaps are fine.
func (c Cohort) validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("workload: cohort name must be non-empty")
	case c.Weight <= 0 || math.IsNaN(c.Weight) || math.IsInf(c.Weight, 0):
		return fmt.Errorf("workload: cohort %q weight %g must be positive and finite", c.Name, c.Weight)
	case c.Clients < 0:
		return fmt.Errorf("workload: cohort %q clients %d must be non-negative", c.Name, c.Clients)
	case c.ClientSkew < 0 || math.IsNaN(c.ClientSkew) || math.IsInf(c.ClientSkew, 0):
		return fmt.Errorf("workload: cohort %q client skew %g must be non-negative and finite", c.Name, c.ClientSkew)
	case c.BatchSize < 0:
		return fmt.Errorf("workload: cohort %q batch size %d must be non-negative", c.Name, c.BatchSize)
	case badCV(c.ArrivalCV) || badCV(c.RuntimeCV) || badCV(c.ValueCV) || badCV(c.DecayCV):
		return fmt.Errorf("workload: cohort %q CVs must be non-negative and finite", c.Name)
	case c.MeanRuntime < 0 || math.IsNaN(c.MeanRuntime) || math.IsInf(c.MeanRuntime, 0):
		return fmt.Errorf("workload: cohort %q mean runtime %g must be non-negative and finite", c.Name, c.MeanRuntime)
	case c.MeanValueRate < 0 || math.IsNaN(c.MeanValueRate) || math.IsInf(c.MeanValueRate, 0):
		return fmt.Errorf("workload: cohort %q mean value rate %g must be non-negative and finite", c.Name, c.MeanValueRate)
	case c.ZeroCrossFactor < 0 || math.IsNaN(c.ZeroCrossFactor) || math.IsInf(c.ZeroCrossFactor, 0):
		return fmt.Errorf("workload: cohort %q zero-cross factor %g must be non-negative and finite", c.Name, c.ZeroCrossFactor)
	case c.ValueSkew != 0 && c.ValueSkew < 1, c.DecaySkew != 0 && c.DecaySkew < 1:
		return fmt.Errorf("workload: cohort %q skew ratios must be >= 1 (or 0 to inherit)", c.Name)
	case c.HighValueFrac < 0 || c.HighValueFrac > 1 || c.HighDecayFrac < 0 || c.HighDecayFrac > 1:
		return fmt.Errorf("workload: cohort %q class fractions must lie in [0,1]", c.Name)
	}
	return nil
}

// cohortParams is a cohort with every inheritance gap resolved against the
// Spec baseline and its distributions constructed.
type cohortParams struct {
	name       string
	clients    int
	batch      int
	clientSkew float64

	arrivalKind DistKind
	arrivalCV   float64

	meanRuntime float64
	runtimes    Dist

	hiV, loV      float64
	highValueFrac float64
	valueCV       float64

	hiD, loD      float64
	highDecayFrac float64
	decayCV       float64

	bound float64
}

func pick(v, base float64) float64 {
	if v != 0 {
		return v
	}
	return base
}

// resolve fills inheritance gaps from the spec and builds the runtime
// distribution. The arrival distribution is built per client (each client
// has its own rate).
func (c Cohort) resolve(s Spec) (cohortParams, error) {
	p := cohortParams{
		name:          c.Name,
		clients:       c.Clients,
		batch:         c.BatchSize,
		clientSkew:    c.ClientSkew,
		arrivalKind:   c.ArrivalKind,
		arrivalCV:     pick(c.ArrivalCV, s.ArrivalCV),
		meanRuntime:   pick(c.MeanRuntime, s.MeanRuntime),
		highValueFrac: pick(c.HighValueFrac, s.HighValueFrac),
		valueCV:       pick(c.ValueCV, s.ValueCV),
		highDecayFrac: pick(c.HighDecayFrac, s.HighDecayFrac),
		decayCV:       pick(c.DecayCV, s.DecayCV),
		bound:         s.Bound,
	}
	if p.clients == 0 {
		p.clients = 1
	}
	if p.batch == 0 {
		p.batch = s.BatchSize
	}
	if p.batch < 1 {
		p.batch = 1
	}
	if p.arrivalKind == "" {
		p.arrivalKind = s.ArrivalKind
	}
	runtimeKind := c.RuntimeKind
	if runtimeKind == "" {
		runtimeKind = s.RuntimeKind
	}
	var err error
	p.runtimes, err = DistByName(string(runtimeKind), p.meanRuntime, pick(c.RuntimeCV, s.RuntimeCV))
	if err != nil {
		return p, fmt.Errorf("workload: cohort %q runtimes: %w", c.Name, err)
	}

	meanValueRate := pick(c.MeanValueRate, s.MeanValueRate)
	valueSkew := pick(c.ValueSkew, s.ValueSkew)
	zcf := pick(c.ZeroCrossFactor, s.ZeroCrossFactor)
	decaySkew := pick(c.DecaySkew, s.DecaySkew)
	p.hiV, p.loV = classMeans(meanValueRate, valueSkew, p.highValueFrac)
	meanDecay := meanValueRate / zcf
	p.hiD, p.loD = classMeans(meanDecay, decaySkew, p.highDecayFrac)
	return p, nil
}

// zipfShares returns n rate shares summing to one, share(i) proportional
// to 1/(i+1)^s. Skew 0 is the uniform split.
func zipfShares(n int, s float64) []float64 {
	shares := make([]float64, n)
	var sum float64
	for i := range shares {
		shares[i] = 1 / math.Pow(float64(i+1), s)
		sum += shares[i]
	}
	for i := range shares {
		shares[i] /= sum
	}
	return shares
}

// streamSeed derives a deterministic per-stream seed: FNV-1a over the
// cohort name and client index, mixed with the spec seed.
func streamSeed(seed int64, cohort string, client int) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(cohort); i++ {
		h ^= uint64(cohort[i])
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= uint64(client>>(8*i)) & 0xff
		h *= prime64
	}
	return seed ^ int64(h)
}

// stream is one client's arrival process during generation.
type stream struct {
	cohort int // index into Spec.Cohorts; heap tie-break
	client int
	p      *cohortParams
	arr    Dist
	r      *rand.Rand
	op     float64 // cumulative operational time
	next   float64 // next arrival on the clock
}

func (st *stream) advance(env Envelope) {
	st.op += math.Max(0, st.arr.Sample(st.r))
	st.next = env.TimeAt(st.op)
}

// draw generates one task arriving at st.next.
func (st *stream) draw(id task.ID) *task.Task {
	p := st.p
	runtime := math.Max(1e-6, p.runtimes.Sample(st.r))
	class := task.LowValue
	vMean := p.loV
	if st.r.Float64() < p.highValueFrac {
		class = task.HighValue
		vMean = p.hiV
	}
	rate := truncatedNormal(st.r, vMean, p.valueCV*vMean)
	dMean := p.loD
	if st.r.Float64() < p.highDecayFrac {
		dMean = p.hiD
	}
	decay := truncatedNormal(st.r, dMean, p.decayCV*dMean)

	t := task.New(id, st.next, runtime, rate*runtime, decay, p.bound)
	t.Class = class
	t.Cohort = p.name
	t.Client = st.client
	return t
}

// streamHeap orders streams by (next arrival, cohort index, client index)
// so generation is deterministic even on exact time ties.
type streamHeap []*stream

func (h streamHeap) Len() int { return len(h) }
func (h streamHeap) Less(a, b int) bool {
	if h[a].next != h[b].next {
		return h[a].next < h[b].next
	}
	if h[a].cohort != h[b].cohort {
		return h[a].cohort < h[b].cohort
	}
	return h[a].client < h[b].client
}
func (h streamHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *streamHeap) Push(x interface{}) { *h = append(*h, x.(*stream)) }
func (h *streamHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// generateCohorts merges every cohort's client streams into one arrival
// sequence. Each (cohort, client) stream runs an independent renewal
// process on its own deterministic RNG; the spec-level envelope modulates
// all of them through the shared time-rescaling map, so a diurnal peak
// compresses every cohort's gaps in lockstep.
func generateCohorts(s Spec) (*Trace, error) {
	env := s.effectiveEnvelope()
	var totalW float64
	for _, c := range s.Cohorts {
		totalW += c.Weight
	}
	var streams streamHeap
	for ci, c := range s.Cohorts {
		p, err := c.resolve(s)
		if err != nil {
			return nil, err
		}
		params := p // one copy shared by the cohort's streams
		shares := zipfShares(params.clients, params.clientSkew)
		// Weight splits offered load; the task rate follows from the
		// cohort's own mean runtime.
		workRate := c.Weight / totalW * s.Load * float64(s.Processors)
		taskRate := workRate / params.meanRuntime
		for cl := 0; cl < params.clients; cl++ {
			mean := float64(params.batch) / (taskRate * shares[cl])
			arr, err := DistByName(string(params.arrivalKind), mean, params.arrivalCV)
			if err != nil {
				return nil, fmt.Errorf("workload: cohort %q arrivals: %w", c.Name, err)
			}
			st := &stream{
				cohort: ci,
				client: cl,
				p:      &params,
				arr:    arr,
				r:      rand.New(rand.NewSource(streamSeed(s.Seed, c.Name, cl))),
			}
			st.advance(env)
			streams = append(streams, st)
		}
	}
	heap.Init(&streams)

	tasks := make([]*task.Task, 0, s.Jobs)
	for len(tasks) < s.Jobs {
		st := streams[0]
		for b := 0; b < st.p.batch && len(tasks) < s.Jobs; b++ {
			tasks = append(tasks, st.draw(task.ID(len(tasks)+1)))
		}
		st.advance(env)
		heap.Fix(&streams, 0)
	}
	return &Trace{Spec: s, Tasks: tasks}, nil
}
