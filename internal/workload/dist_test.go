package workload

import (
	"math"
	"math/rand"
	"testing"
)

func sampleMean(d Dist, n int, seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

func TestDistributionMeans(t *testing.T) {
	const n = 200000
	dists := []Dist{
		Constant{V: 7},
		Exponential{M: 50},
		Normal{Mu: 100, Sigma: 10, Min: 1},
		Uniform{Lo: 10, Hi: 30},
		Pareto{Xm: 10, Alpha: 2.5},
		LogNormal{Mu: 2, Sigma: 0.5},
	}
	for _, d := range dists {
		want := d.Mean()
		got := sampleMean(d, n, 3)
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("%s: sample mean %v vs analytic %v", d, got, want)
		}
	}
}

func TestNormalTruncation(t *testing.T) {
	d := Normal{Mu: 1, Sigma: 10, Min: 0.5}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		if v := d.Sample(r); v < 0.5 {
			t.Fatalf("truncated normal produced %v < min", v)
		}
	}
}

func TestParetoPositiveAndHeavy(t *testing.T) {
	d := Pareto{Xm: 5, Alpha: 1.2}
	r := rand.New(rand.NewSource(2))
	sawBig := false
	for i := 0; i < 100000; i++ {
		v := d.Sample(r)
		if v < 5 {
			t.Fatalf("pareto produced %v below scale", v)
		}
		if v > 100 {
			sawBig = true
		}
	}
	if !sawBig {
		t.Error("pareto tail produced nothing above 20x the scale in 1e5 draws")
	}
	if !math.IsInf(Pareto{Xm: 1, Alpha: 0.9}.Mean(), 1) {
		t.Error("pareto with alpha<=1 should report infinite mean")
	}
}

func TestDistByName(t *testing.T) {
	for _, kind := range []string{"const", "exp", "normal", "uniform", "pareto", "lognormal"} {
		d, err := DistByName(kind, 100, 0.3)
		if err != nil {
			t.Fatalf("DistByName(%q): %v", kind, err)
		}
		if kind != "pareto" { // pareto's mean is exact by construction too
			if math.Abs(d.Mean()-100)/100 > 0.01 {
				t.Errorf("DistByName(%q).Mean() = %v, want ~100", kind, d.Mean())
			}
		}
	}
	if _, err := DistByName("cauchy", 1, 1); err == nil {
		t.Error("unknown distribution accepted")
	}
}

func TestLogNormalMeanMatchesCV(t *testing.T) {
	d, err := DistByName("lognormal", 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	got := sampleMean(d, 200000, 4)
	if math.Abs(got-100)/100 > 0.05 {
		t.Errorf("lognormal sample mean %v, want ~100", got)
	}
}

func TestDistStringsNonEmpty(t *testing.T) {
	for _, d := range []Dist{Constant{1}, Exponential{1}, Normal{1, 1, 0},
		Uniform{0, 1}, Pareto{1, 2}, LogNormal{0, 1},
		Gamma{K: 2, Theta: 3}, Weibull{K: 0.5, Lambda: 1}} {
		if d.String() == "" {
			t.Errorf("%T String() empty", d)
		}
	}
}

func sampleMeanCV(d Dist, n int, seed int64) (mean, cv float64) {
	r := rand.New(rand.NewSource(seed))
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		sum += v
		ss += v * v
	}
	mean = sum / float64(n)
	variance := ss/float64(n) - mean*mean
	return mean, math.Sqrt(math.Max(0, variance)) / mean
}

// TestBurstyDistsMatchCV checks that the gamma and weibull constructions
// deliver the requested mean AND the requested coefficient of variation —
// the whole point of the bursty arrival kinds.
func TestBurstyDistsMatchCV(t *testing.T) {
	const n = 400000
	for _, tc := range []struct {
		kind string
		cv   float64
	}{
		{"gamma", 0.5}, {"gamma", 1}, {"gamma", 3}, {"gamma", 6},
		{"weibull", 0.5}, {"weibull", 1}, {"weibull", 2.5}, {"weibull", 5},
	} {
		d, err := DistByName(tc.kind, 100, tc.cv)
		if err != nil {
			t.Fatalf("DistByName(%q, cv=%v): %v", tc.kind, tc.cv, err)
		}
		if math.Abs(d.Mean()-100)/100 > 0.01 {
			t.Errorf("%s cv=%v: analytic mean %v, want 100", tc.kind, tc.cv, d.Mean())
		}
		mean, cv := sampleMeanCV(d, n, 7)
		if math.Abs(mean-100)/100 > 0.1 {
			t.Errorf("%s cv=%v: sample mean %v, want ~100", tc.kind, tc.cv, mean)
		}
		// High-CV shapes converge slowly; accept 15% relative error.
		if math.Abs(cv-tc.cv)/tc.cv > 0.15 {
			t.Errorf("%s: sample CV %v, want ~%v", tc.kind, cv, tc.cv)
		}
	}
}

// TestParetoCVDerivation checks the satellite fix: pareto:cv=X derives the
// tail index from the CV instead of hardcoding alpha=1.5.
func TestParetoCVDerivation(t *testing.T) {
	for _, cv := range []float64{0.5, 1, 2} {
		d, err := DistByName("pareto", 100, cv)
		if err != nil {
			t.Fatal(err)
		}
		p := d.(Pareto)
		// CV^2 = 1/(alpha(alpha-2)) for alpha > 2.
		if p.Alpha <= 2 {
			t.Fatalf("cv=%v: alpha %v not > 2 (finite variance needed)", cv, p.Alpha)
		}
		gotCV := math.Sqrt(1 / (p.Alpha * (p.Alpha - 2)))
		if math.Abs(gotCV-cv)/cv > 1e-9 {
			t.Errorf("cv=%v: alpha %v realizes CV %v", cv, p.Alpha, gotCV)
		}
		if math.Abs(p.Mean()-100)/100 > 1e-9 {
			t.Errorf("cv=%v: mean %v, want 100", cv, p.Mean())
		}
	}
	// CV 0 keeps the legacy heavy tail.
	d, err := DistByName("pareto", 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a := d.(Pareto).Alpha; a != 1.5 {
		t.Errorf("default alpha %v, want 1.5", a)
	}
}

func TestDistByNameRejectsBadCV(t *testing.T) {
	for _, cv := range []float64{-1, math.NaN(), math.Inf(1)} {
		for _, kind := range []string{"exp", "gamma", "weibull", "pareto", "lognormal", "normal"} {
			if _, err := DistByName(kind, 100, cv); err == nil {
				t.Errorf("DistByName(%q, cv=%v) accepted", kind, cv)
			}
		}
	}
	// Weibull shapes outside the bisection bracket are unrealizable.
	if _, err := DistByName("weibull", 100, 1e9); err == nil {
		t.Error("absurd weibull CV accepted")
	}
}
