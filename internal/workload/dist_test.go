package workload

import (
	"math"
	"math/rand"
	"testing"
)

func sampleMean(d Dist, n int, seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

func TestDistributionMeans(t *testing.T) {
	const n = 200000
	dists := []Dist{
		Constant{V: 7},
		Exponential{M: 50},
		Normal{Mu: 100, Sigma: 10, Min: 1},
		Uniform{Lo: 10, Hi: 30},
		Pareto{Xm: 10, Alpha: 2.5},
		LogNormal{Mu: 2, Sigma: 0.5},
	}
	for _, d := range dists {
		want := d.Mean()
		got := sampleMean(d, n, 3)
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("%s: sample mean %v vs analytic %v", d, got, want)
		}
	}
}

func TestNormalTruncation(t *testing.T) {
	d := Normal{Mu: 1, Sigma: 10, Min: 0.5}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		if v := d.Sample(r); v < 0.5 {
			t.Fatalf("truncated normal produced %v < min", v)
		}
	}
}

func TestParetoPositiveAndHeavy(t *testing.T) {
	d := Pareto{Xm: 5, Alpha: 1.2}
	r := rand.New(rand.NewSource(2))
	sawBig := false
	for i := 0; i < 100000; i++ {
		v := d.Sample(r)
		if v < 5 {
			t.Fatalf("pareto produced %v below scale", v)
		}
		if v > 100 {
			sawBig = true
		}
	}
	if !sawBig {
		t.Error("pareto tail produced nothing above 20x the scale in 1e5 draws")
	}
	if !math.IsInf(Pareto{Xm: 1, Alpha: 0.9}.Mean(), 1) {
		t.Error("pareto with alpha<=1 should report infinite mean")
	}
}

func TestDistByName(t *testing.T) {
	for _, kind := range []string{"const", "exp", "normal", "uniform", "pareto", "lognormal"} {
		d, err := DistByName(kind, 100, 0.3)
		if err != nil {
			t.Fatalf("DistByName(%q): %v", kind, err)
		}
		if kind != "pareto" { // pareto's mean is exact by construction too
			if math.Abs(d.Mean()-100)/100 > 0.01 {
				t.Errorf("DistByName(%q).Mean() = %v, want ~100", kind, d.Mean())
			}
		}
	}
	if _, err := DistByName("cauchy", 1, 1); err == nil {
		t.Error("unknown distribution accepted")
	}
}

func TestLogNormalMeanMatchesCV(t *testing.T) {
	d, err := DistByName("lognormal", 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	got := sampleMean(d, 200000, 4)
	if math.Abs(got-100)/100 > 0.05 {
		t.Errorf("lognormal sample mean %v, want ~100", got)
	}
}

func TestDistStringsNonEmpty(t *testing.T) {
	for _, d := range []Dist{Constant{1}, Exponential{1}, Normal{1, 1, 0},
		Uniform{0, 1}, Pareto{1, 2}, LogNormal{0, 1}} {
		if d.String() == "" {
			t.Errorf("%T String() empty", d)
		}
	}
}
