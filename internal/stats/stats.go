// Package stats provides the small statistical toolkit the experiment
// harness uses: streaming moments, confidence intervals, series, and the
// relative-improvement and peak-finding helpers the paper's figures report.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes streaming mean and variance (Welford's algorithm).
// The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds a sample in.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the sample count.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 for no samples).
func (a *Accumulator) Mean() float64 { return a.mean }

// Min returns the smallest sample (0 for no samples).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample (0 for no samples).
func (a *Accumulator) Max() float64 { return a.max }

// Variance returns the unbiased sample variance (0 for fewer than two
// samples).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// CI95 returns the half-width of a 95% normal-approximation confidence
// interval on the mean.
func (a *Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return 1.96 * a.StdDev() / math.Sqrt(float64(a.n))
}

// Summary is a frozen snapshot of an accumulator.
type Summary struct {
	N            int
	Mean, StdDev float64
	Min, Max     float64
	CI95         float64
}

// Summarize freezes the accumulator.
func (a *Accumulator) Summarize() Summary {
	return Summary{N: a.n, Mean: a.Mean(), StdDev: a.StdDev(), Min: a.min, Max: a.max, CI95: a.CI95()}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g [%.4g, %.4g]", s.N, s.Mean, s.CI95, s.Min, s.Max)
}

// Mean averages a slice (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Summarize computes a Summary over a slice.
func Summarize(xs []float64) Summary {
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	return a.Summarize()
}

// Improvement returns the percentage improvement of x over baseline:
// (x-baseline)/|baseline| * 100. A zero baseline yields 0 to keep series
// plottable; callers comparing against genuinely zero baselines should use
// absolute numbers instead.
func Improvement(x, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (x - baseline) / math.Abs(baseline) * 100
}

// Point is one (x, y) sample in a figure series, with the replication
// spread retained for error bars.
type Point struct {
	X   float64
	Y   float64
	Err float64 // 95% CI half-width across replications
}

// Series is a named sequence of points, one paper curve.
type Series struct {
	Name   string
	Points []Point
}

// Peak returns the point with the maximum Y and its index (-1 for an empty
// series).
func (s Series) Peak() (Point, int) {
	best := -1
	for i, p := range s.Points {
		if best < 0 || p.Y > s.Points[best].Y {
			best = i
		}
	}
	if best < 0 {
		return Point{}, -1
	}
	return s.Points[best], best
}

// YAt returns the Y for a given X, if present.
func (s Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Crossover locates the first X at which series a falls below series b,
// scanning their shared Xs in ascending order. It reports whether such a
// point exists. Figures with regime changes (e.g. admission control vs.
// none across load) use this to report where the ordering flips.
func Crossover(a, b Series) (float64, bool) {
	type pair struct{ ya, yb float64 }
	shared := map[float64]*pair{}
	for _, p := range a.Points {
		shared[p.X] = &pair{ya: p.Y}
	}
	xs := make([]float64, 0, len(shared))
	for _, p := range b.Points {
		if sp, ok := shared[p.X]; ok {
			sp.yb = p.Y
			xs = append(xs, p.X)
		}
	}
	sort.Float64s(xs)
	for _, x := range xs {
		if sp := shared[x]; sp.ya < sp.yb {
			return x, true
		}
	}
	return 0, false
}

// Histogram counts samples into equal-width bins over [lo, hi]; samples
// outside the range clamp to the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram constructs a histogram with the given bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add bins a sample.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	var idx int
	if h.Hi > h.Lo {
		idx = int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	}
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Counts[idx]++
}

// Total returns the number of binned samples.
func (h *Histogram) Total() int {
	var t int
	for _, c := range h.Counts {
		t += c
	}
	return t
}
