package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var acc Accumulator
	var sum float64
	for i := range xs {
		xs[i] = rng.NormFloat64()*10 + 5
		acc.Add(xs[i])
		sum += xs[i]
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	variance := ss / float64(len(xs)-1)

	if math.Abs(acc.Mean()-mean) > 1e-9 {
		t.Errorf("Mean = %v, want %v", acc.Mean(), mean)
	}
	if math.Abs(acc.Variance()-variance) > 1e-9 {
		t.Errorf("Variance = %v, want %v", acc.Variance(), variance)
	}
	if acc.N() != 1000 {
		t.Errorf("N = %d", acc.N())
	}
}

func TestAccumulatorEdgeCases(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.CI95() != 0 {
		t.Error("empty accumulator should return zeros")
	}
	a.Add(5)
	if a.Mean() != 5 || a.Variance() != 0 || a.CI95() != 0 {
		t.Error("single-sample accumulator: mean 5, variance/CI 0")
	}
	if a.Min() != 5 || a.Max() != 5 {
		t.Error("min/max of single sample")
	}
	a.Add(3)
	a.Add(9)
	if a.Min() != 3 || a.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 3/9", a.Min(), a.Max())
	}
}

// Property: mean lies within [min, max] and stddev is non-negative.
func TestAccumulatorBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var a Accumulator
		any := false
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Keep magnitudes in a range where intermediate arithmetic
			// cannot overflow; the accumulator targets metric-scale data.
			a.Add(math.Mod(x, 1e12))
			any = true
		}
		if !any {
			return true
		}
		s := a.Summarize()
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndSummarize(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Error("Mean wrong")
	}
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Error("Summary.String empty")
	}
}

func TestImprovement(t *testing.T) {
	cases := []struct{ x, base, want float64 }{
		{110, 100, 10},
		{90, 100, -10},
		{100, 100, 0},
		{50, -100, 150}, // negative baseline: normalized by |baseline|
		{-150, -100, -50},
		{5, 0, 0}, // zero baseline guarded
	}
	for _, c := range cases {
		if got := Improvement(c.x, c.base); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Improvement(%v, %v) = %v, want %v", c.x, c.base, got, c.want)
		}
	}
}

func TestSeriesPeakAndYAt(t *testing.T) {
	s := Series{Name: "s", Points: []Point{{X: 1, Y: 5}, {X: 2, Y: 9}, {X: 3, Y: 7}}}
	p, i := s.Peak()
	if i != 1 || p.Y != 9 {
		t.Errorf("Peak = %+v at %d", p, i)
	}
	if y, ok := s.YAt(3); !ok || y != 7 {
		t.Errorf("YAt(3) = %v, %v", y, ok)
	}
	if _, ok := s.YAt(99); ok {
		t.Error("YAt(99) found")
	}
	if _, i := (Series{}).Peak(); i != -1 {
		t.Error("empty series peak index should be -1")
	}
}

func TestCrossover(t *testing.T) {
	a := Series{Points: []Point{{X: 1, Y: 10}, {X: 2, Y: 10}, {X: 3, Y: 10}}}
	b := Series{Points: []Point{{X: 1, Y: 5}, {X: 2, Y: 12}, {X: 3, Y: 20}}}
	x, ok := Crossover(a, b)
	if !ok || x != 2 {
		t.Errorf("Crossover = %v, %v; want 2, true", x, ok)
	}
	_, ok = Crossover(b, Series{Points: []Point{{X: 1, Y: 0}}})
	if ok {
		t.Error("crossover found where none exists")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.9, 10, 100} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	if h.Counts[0] != 3 { // -1 (clamped), 0, 1.9
		t.Errorf("bin 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 3 { // 9.9, 10 (clamped), 100 (clamped)
		t.Errorf("bin 4 = %d, want 3", h.Counts[4])
	}
	degenerate := NewHistogram(5, 5, 0)
	degenerate.Add(1)
	if degenerate.Total() != 1 {
		t.Error("degenerate histogram lost a sample")
	}
}
