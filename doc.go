// Package repro reproduces "Balancing Risk and Reward in a Market-based
// Task Service" (Irwin, Grit, Chase — HPDC 2004): value-based task
// scheduling with linear-decay value functions, the FirstReward
// risk/reward heuristic, slack-based admission control, and the
// surrounding bidding economy.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// inventory), runnable demonstrations under examples/, and command-line
// tools under cmd/. EXPERIMENTS.md records the paper-vs-measured
// comparison for every figure in the paper's evaluation; the benchmarks in
// bench_test.go regenerate each figure at reduced scale.
package repro
