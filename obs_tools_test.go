package repro

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/wire"
)

// buildTool compiles one of the cmd/ tools into dir and returns its path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	build := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building %s: %v", name, err)
	}
	return bin
}

// TestObstopFleetTable boots three real siteserver processes, settles one
// contract at each, and checks obstop renders a fleet table with one live
// row per site: the ledger columns reflect the settled book and no target
// reads as down.
func TestObstopFleetTable(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	binDir := t.TempDir()
	siteBin := buildTool(t, binDir, "siteserver")
	obstopBin := buildTool(t, binDir, "obstop")

	ids := []string{"fleet-a", "fleet-b", "fleet-c"}
	var diags []string
	for _, id := range ids {
		p := startSiteProc(t, siteBin,
			"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
			"-id", id, "-procs", "2", "-timescale", "1ms",
			"-admission", "accept-all", "-quiet")
		diags = append(diags, p.diagAddr)

		c, err := wire.Dial(p.addr)
		if err != nil {
			t.Fatal(err)
		}
		settled := make(chan wire.Envelope, 1)
		c.SetOnSettled(func(e wire.Envelope) { settled <- e })
		bid := market.Bid{TaskID: 1, Runtime: 5, Value: 50, Decay: 0.1, Bound: math.Inf(1)}
		sb, ok, err := c.Propose(bid)
		if err != nil || !ok {
			t.Fatalf("propose at %s: %v %v", id, ok, err)
		}
		if _, ok, err := c.Award(bid, sb); err != nil || !ok {
			t.Fatalf("award at %s: %v %v", id, ok, err)
		}
		select {
		case <-settled:
		case <-time.After(10 * time.Second):
			t.Fatalf("contract at %s never settled", id)
		}
		c.Close()
	}

	out, err := exec.Command(obstopBin, "-once", "-targets", strings.Join(diags, ",")).Output()
	if err != nil {
		t.Fatalf("obstop: %v\n%s", err, out)
	}
	table := string(out)
	if strings.Contains(table, "DOWN:") {
		t.Fatalf("obstop reported a target down:\n%s", table)
	}
	for _, col := range []string{"SITE", "QUEUE", "QUOTE/s", "SETTLED", "REALIZED", "EXPOSURE"} {
		if !strings.Contains(table, col) {
			t.Errorf("table is missing the %s column:\n%s", col, table)
		}
	}
	for _, id := range ids {
		row := ""
		for _, line := range strings.Split(table, "\n") {
			if strings.HasPrefix(line, id) {
				row = line
				break
			}
		}
		if row == "" {
			t.Errorf("no row for site %s:\n%s", id, table)
			continue
		}
		// SITE QUEUE RUN CONN QUOTE/s OPEN SETTLED DFLT EXPECTED REALIZED EXPOSURE
		fields := strings.Fields(row)
		if len(fields) != 11 {
			t.Errorf("row for %s has %d columns, want 11: %q", id, len(fields), row)
			continue
		}
		if fields[6] != "1" {
			t.Errorf("site %s shows %s settled contracts, want 1: %q", id, fields[6], row)
		}
		if fields[9] == "-" || fields[9] == "0.00" {
			t.Errorf("site %s shows no realized yield: %q", id, row)
		}
	}
}

// lockedBuf is a concurrency-safe trace sink: server settlement traces are
// emitted from the dispatch goroutine.
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) Bytes() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.b.Bytes()...)
}

// tracecatReport mirrors tracecat's -json schema.
type tracecatReport struct {
	Events  int `json:"events"`
	Orphans int `json:"orphans"`
	Paths   []struct {
		Task      uint64        `json:"task"`
		Req       string        `json:"req"`
		Outcome   string        `json:"outcome"`
		Complete  bool          `json:"complete"`
		Orphans   []string      `json:"orphans"`
		Breakdown obs.Breakdown `json:"breakdown"`
	} `json:"paths"`
}

// TestTracecatCriticalPath negotiates a real contract over TCP with both
// sides tracing, concatenates the two streams, and checks tracecat
// reconstructs one complete bid→settle critical path with no orphan spans
// and a non-negative latency breakdown.
func TestTracecatCriticalPath(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	tracecatBin := buildTool(t, t.TempDir(), "tracecat")

	var clientOut, siteOut lockedBuf
	srv, err := wire.NewServer("127.0.0.1:0", wire.ServerConfig{
		SiteID:       "trace-site",
		Processors:   1,
		Policy:       core.FirstReward{Alpha: 0.3, DiscountRate: 0.01},
		Admission:    admission.AcceptAll{},
		DiscountRate: 0.01,
		TimeScale:    time.Millisecond,
		Tracer:       obs.NewTracer(&siteOut, "siteserver"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	settled := make(chan wire.Envelope, 1)
	c.SetOnSettled(func(e wire.Envelope) { settled <- e })

	neg := &wire.Negotiator{
		Sites:   []*wire.SiteClient{c},
		Retries: -1,
		Tracer:  obs.NewTracer(&clientOut, "gridclient"),
	}
	bid := market.Bid{TaskID: 7, Runtime: 10, Value: 100, Decay: 0.5,
		Bound: math.Inf(1), Cohort: "batch", Client: 1}
	if _, ok, err := neg.Negotiate(bid); err != nil || !ok {
		t.Fatalf("negotiate: %v %v", ok, err)
	}
	select {
	case <-settled:
	case <-time.After(10 * time.Second):
		t.Fatal("never settled")
	}

	// The settle trace is written just after the push: wait until the site
	// stream contains it before handing the file to tracecat.
	deadline := time.Now().Add(5 * time.Second)
	for {
		evs, err := obs.ReadTrace(bytes.NewReader(siteOut.Bytes()))
		if err == nil {
			done := false
			for _, e := range evs {
				if e.Stage == obs.StageSettle {
					done = true
				}
			}
			if done {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("site trace never recorded the settle stage")
		}
		time.Sleep(20 * time.Millisecond)
	}

	tracePath := filepath.Join(t.TempDir(), "combined.trace")
	if err := os.WriteFile(tracePath, append(clientOut.Bytes(), siteOut.Bytes()...), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(tracecatBin, "-json", "-strict", "-clock", "wall", tracePath).Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			t.Fatalf("tracecat -strict failed: %v\nstderr: %s\nstdout: %s", err, ee.Stderr, out)
		}
		t.Fatalf("tracecat: %v", err)
	}
	var rep tracecatReport
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("decoding tracecat output: %v\n%s", err, out)
	}
	if rep.Orphans != 0 {
		t.Errorf("tracecat found %d orphan events", rep.Orphans)
	}
	if len(rep.Paths) != 1 {
		t.Fatalf("tracecat reconstructed %d paths, want 1:\n%s", len(rep.Paths), out)
	}
	p := rep.Paths[0]
	if p.Task != 7 || p.Outcome != "settled" || !p.Complete || len(p.Orphans) != 0 {
		t.Fatalf("path = %+v, want task 7 settled and complete with no orphans", p)
	}
	if p.Req == "" {
		t.Error("path lost its cross-process request ID")
	}
	for name, v := range map[string]float64{
		"negotiation": p.Breakdown.Negotiation,
		"queue":       p.Breakdown.Queue,
		"execution":   p.Breakdown.Execution,
		"settlement":  p.Breakdown.Settlement,
		"total":       p.Breakdown.Total,
	} {
		if v < 0 || math.IsNaN(v) {
			t.Errorf("breakdown %s = %v, want >= 0", name, v)
		}
	}
	if p.Breakdown.Total < p.Breakdown.Execution {
		t.Errorf("total %v < execution %v", p.Breakdown.Total, p.Breakdown.Execution)
	}
}
