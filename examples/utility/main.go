// Utility: the resource-market extension from Sections 2 and 7 — a task
// service acting as a reseller of raw resources. The provider watches its
// own per-node yield and backlog, leases nodes from a shared utility pool
// when the marginal gain clears the posted price, and returns them when
// demand fades. A fixed-capacity twin runs the same workload for
// comparison.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/site"
	"repro/internal/workload"
)

func main() {
	// A bursty day: load 4x against the seed capacity for the first chunk
	// of the trace, then nothing — the shape utilities exist for.
	spec := workload.Default()
	spec.Jobs = 400
	spec.Processors = 2 // seed capacity the load factor is computed against
	spec.Load = 4
	spec.ValueSkew = 3
	spec.DecaySkew = 5
	spec.ZeroCrossFactor = 2
	spec.Seed = 23
	trace, err := workload.Generate(spec)
	if err != nil {
		panic(err)
	}
	policy := core.FirstReward{Alpha: 0.2, DiscountRate: 0.01}

	// Fixed twin: two processors, come what may.
	fixed := site.RunTrace(trace.Clone(), site.Config{Processors: 2, Policy: policy})

	// Adaptive provider: two seed processors plus up to 16 leased from the
	// utility at a surge-priced lease.
	engine := sim.New()
	s := site.New(engine, "reseller", site.Config{Processors: 2, Policy: policy})
	pool := resource.NewPool(resource.PoolConfig{Capacity: 16, BasePrice: 0.03, Surge: 0.5})
	provider, err := resource.NewProvider(engine, s, pool, resource.ProviderConfig{
		EvalInterval: 50,
		Until:        1e6,
		Step:         2,
	})
	if err != nil {
		panic(err)
	}
	site.ScheduleArrivals(engine, s, trace.Clone())
	engine.Run()

	m := s.Metrics()
	fmt.Println("fixed capacity (2 nodes):")
	fmt.Printf("  yield %8.0f   mean delay %6.1f\n\n", fixed.TotalYield, fixed.MeanDelay())

	fmt.Println("adaptive reseller (2 seed nodes + utility pool):")
	fmt.Printf("  gross yield %8.0f   lease cost %7.0f   net %8.0f\n",
		m.TotalYield, provider.LeaseCost, provider.NetYield())
	fmt.Printf("  mean delay %6.1f   capacity adjustments %d\n\n", m.MeanDelay(), provider.Adjustments)

	fmt.Println("capacity timeline (first 10 adjustments):")
	for i, adj := range provider.History {
		if i >= 10 {
			fmt.Printf("  ... %d more\n", len(provider.History)-10)
			break
		}
		verb := "leased"
		n := adj.Nodes
		if n < 0 {
			verb = "released"
			n = -n
		}
		fmt.Printf("  t=%6.0f  %s %d node(s) at price %.3f  (%s)\n", adj.Time, verb, n, adj.Price, adj.Estimate)
	}

	fmt.Println("\nThe reseller buys capacity while its marginal yield clears the pool")
	fmt.Println("price and sheds it as the burst drains, netting more than the fixed")
	fmt.Println("site even after paying the utility.")
}
