// Auction: pricing strategies over the negotiation protocol. The paper
// charges the bid-derived price but notes (Section 2) that charging below
// the bid — as in the second-price Vickrey auctions of Spawn — rewards
// truthful bidding. This example runs the same budgeted client population
// under full pricing and second pricing and compares what clients pay,
// how far their budgets stretch, and what the sites earn.
package main

import (
	"fmt"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/site"
	"repro/internal/workload"
)

func run(pricer market.Pricer, strategy market.BidStrategy) (placed, unaffordable int, spent, revenue float64) {
	spec := workload.Default()
	spec.Jobs = 500
	spec.Processors = 8
	spec.ValueSkew = 3
	spec.DecaySkew = 5
	spec.Seed = 31
	trace, err := workload.Generate(spec)
	if err != nil {
		panic(err)
	}

	// Two competing sites so the second price has a real runner-up offer.
	cfgs := []site.Config{
		{Processors: 4, Policy: core.FirstReward{Alpha: 0.2, DiscountRate: 0.01},
			Admission: admission.SlackThreshold{Threshold: 0}, DiscountRate: 0.01},
		{Processors: 4, Policy: core.FirstReward{Alpha: 0.2, DiscountRate: 0.01},
			Admission: admission.SlackThreshold{Threshold: 0}, DiscountRate: 0.01},
	}
	ex := market.NewExchange(market.BestYield{}, cfgs)
	ex.Broker.SetPricer(pricer)

	client := market.NewClient(ex.Engine, ex.Broker, market.ClientConfig{
		Name:     "lab",
		Budget:   4000, // tight: pricing efficiency decides how far it goes
		Interval: 1000,
		Strategy: strategy,
	})
	client.ScheduleArrivals(trace.Clone())
	ex.Run()

	for _, c := range client.Contracts {
		revenue += c.ChargedPrice()
	}
	return client.Placed, client.Unaffordable, client.SpentTotal, revenue
}

func main() {
	fmt.Println("same workload, same sites, same budget — different pricing:")
	fmt.Println()
	for _, p := range []market.Pricer{market.FullPrice{}, market.SecondPrice{}} {
		placed, unaffordable, spent, revenue := run(p, market.Truthful{})
		fmt.Printf("%-14s placed %3d  unaffordable %3d  committed %8.0f  charged %8.0f\n",
			p.Name(), placed, unaffordable, spent, revenue)
	}

	fmt.Println()
	fmt.Println("and under full pricing, a client that shades its bids to 60%:")
	placed, unaffordable, spent, revenue := run(market.FullPrice{}, market.Shaded{Fraction: 0.6})
	fmt.Printf("%-14s placed %3d  unaffordable %3d  committed %8.0f  charged %8.0f\n",
		"shaded(0.6)", placed, unaffordable, spent, revenue)

	fmt.Println()
	fmt.Println("Second pricing stretches the same budget across more placements by")
	fmt.Println("charging the runner-up offer; shading does the same unilaterally but")
	fmt.Println("surrenders scheduling priority — the incentive tension Vickrey removes.")
}
