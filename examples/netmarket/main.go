// Netmarket: the Figure 1 negotiation over real sockets — three site
// servers speaking the JSON/TCP protocol, and a client that bids, awards,
// and collects settlements, all in one process for easy running.
//
// The same protocol runs across machines via cmd/siteserver and
// cmd/gridclient.
package main

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/task"
	"repro/internal/wire"
)

func main() {
	const timeScale = 2 * time.Millisecond // one sim unit = 2ms wall clock

	// Start three sites with different capacities and admission postures.
	var servers []*wire.Server
	for i, sc := range []struct {
		procs int
		slack float64
	}{{4, 100}, {2, 0}, {1, -1e18 /* accept anything quotable */}} {
		srv, err := wire.NewServer("127.0.0.1:0", wire.ServerConfig{
			SiteID:       fmt.Sprintf("site-%d", i),
			Processors:   sc.procs,
			Policy:       core.FirstReward{Alpha: 0.3, DiscountRate: 0.01},
			Admission:    admission.SlackThreshold{Threshold: sc.slack},
			DiscountRate: 0.01,
			TimeScale:    timeScale,
		})
		if err != nil {
			panic(err)
		}
		defer srv.Close()
		servers = append(servers, srv)
		fmt.Printf("started %s on %s (%d processors, slack threshold %g)\n",
			fmt.Sprintf("site-%d", i), srv.Addr(), sc.procs, sc.slack)
	}

	// Connect a client to every site and negotiate a burst of tasks.
	var clients []*wire.SiteClient
	var wg sync.WaitGroup
	var mu sync.Mutex
	revenue := 0.0
	for _, srv := range servers {
		c, err := wire.Dial(srv.Addr())
		if err != nil {
			panic(err)
		}
		c.SetOnSettled(func(e wire.Envelope) {
			mu.Lock()
			revenue += e.FinalPrice
			mu.Unlock()
			fmt.Printf("  settled task %d at %s for %.1f\n", e.TaskID, e.SiteID, e.FinalPrice)
			wg.Done()
		})
		defer c.Close()
		clients = append(clients, c)
	}
	neg := &wire.Negotiator{
		Sites:    clients,
		Selector: market.BestYield{},
		Retries:  1,
		Backoff:  5 * time.Millisecond,
	}

	placed := 0
	for i := 1; i <= 12; i++ {
		// Halfway through the run, site-1 is killed mid-exchange: the
		// negotiator treats it as dropping out and the market degrades
		// gracefully to the surviving sites.
		if i == 7 {
			fmt.Println("--- killing site-1 mid-run ---")
			servers[1].Close()
			if n := servers[1].Abandoned; n > 0 {
				fmt.Printf("    (%d contracts died with site-1; their settlements will never arrive)\n", n)
				wg.Add(-n)
			}
		}
		// Tasks of varying length and urgency; value 10x runtime, decaying
		// to zero after ~3 runtimes of delay.
		runtime := float64(10 + 15*(i%4))
		t := task.New(task.ID(i), 0, runtime, 10*runtime, 10.0/3.0, 1e9)
		terms, ok, err := neg.Negotiate(market.BidFromTask(t))
		if err != nil {
			fmt.Printf("task %d failed: %v\n", i, err)
			continue
		}
		if !ok {
			fmt.Printf("task %d declined by every site\n", i)
			continue
		}
		placed++
		wg.Add(1)
		fmt.Printf("task %d -> %s (expected completion %.0f, price %.1f)\n",
			i, terms.SiteID, terms.ExpectedCompletion, terms.ExpectedPrice)
		time.Sleep(5 * timeScale)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		fmt.Println("timed out waiting for settlements")
	}

	mu.Lock()
	fmt.Printf("\nplaced %d tasks, total revenue %.1f\n", placed, revenue)
	mu.Unlock()
	for _, srv := range servers {
		fmt.Printf("%s: accepted=%d rejected=%d completed=%d abandoned=%d revenue=%.1f\n",
			srv.Addr(), srv.Accepted, srv.Rejected, srv.Completed, srv.Abandoned, srv.Revenue)
	}
}
