// Deadline: the paper's motivating scenario from Section 1 — "the results
// of a five-hour batch job that is submitted six hours before a deadline
// are worthless in seven hours."
//
// The example encodes that job as a linear-decay value function (worth
// $600, fully decayed two hours after its minimum completion), places it in
// a congested site, and shows how a value-blind scheduler (FCFS) squanders
// it while FirstReward runs it while it still pays.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/site"
	"repro/internal/task"
)

func main() {
	// Time unit: one minute.
	const hour = 60.0

	// Background: a queue of routine overnight jobs, each ~90 minutes,
	// modestly valuable, and patient (low decay).
	makeBackground := func() []*task.Task {
		var tasks []*task.Task
		for i := 0; i < 8; i++ {
			t := task.New(task.ID(i+1), 0, 1.5*hour, 90, 0.05, 1e9)
			tasks = append(tasks, t)
		}
		return tasks
	}

	// The urgent job: five hours long, submitted at t=0 with a six-hour
	// deadline; results are worthless one hour past the deadline (seven
	// hours out), i.e. two hours of tolerable delay past its minimum
	// completion. Worth $600 on time, decaying $5/minute to zero.
	makeUrgent := func() *task.Task {
		return task.New(100, 0, 5*hour, 600, 5.0, 0)
	}

	for _, policy := range []core.Policy{core.FCFS{}, core.FirstReward{Alpha: 0.3, DiscountRate: 0.001}} {
		engine := sim.New()
		s := site.New(engine, "cluster", site.Config{Processors: 2, Policy: policy})

		urgent := makeUrgent()
		tasks := append(makeBackground(), urgent)
		site.ScheduleArrivals(engine, s, tasks)
		engine.Run()

		m := s.Metrics()
		fmt.Printf("%-34s urgent job: completed t=%.0f min (deadline 360, worthless at 420), earned $%.0f\n",
			policy.Name(), urgent.Completion, urgent.Yield)
		fmt.Printf("%-34s total earned: $%.0f across %d jobs\n\n", "", m.TotalYield, m.Completed)
	}

	fmt.Println("FCFS burns the urgent job's value behind the overnight queue; the")
	fmt.Println("value-based scheduler runs it first because its decay dominates the mix.")
}
