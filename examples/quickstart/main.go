// Quickstart: generate a value-annotated batch workload, run it through a
// task-service site under two scheduling policies, and compare the yield.
//
// This is the smallest end-to-end use of the library: a workload spec, a
// site config, and the metrics that come back.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/site"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	// A mix of 1000 single-node batch jobs at a load factor of one: 20% of
	// jobs are 4x more valuable per unit of work, 20% are 5x more urgent.
	spec := workload.Default()
	spec.Jobs = 1000
	spec.ValueSkew = 4
	spec.DecaySkew = 5
	spec.Seed = 42

	trace, err := workload.Generate(spec)
	if err != nil {
		panic(err)
	}
	first, last := trace.Span()
	fmt.Printf("workload: %d jobs over [%.0f, %.0f], offered load %.2f\n\n",
		len(trace.Tasks), first, last, trace.OfferedLoad())

	policies := []core.Policy{
		core.FCFS{},
		core.SWPT{},
		core.FirstPrice{},
		core.FirstReward{Alpha: 0, DiscountRate: 0.01},
		core.FirstReward{Alpha: 0.5, DiscountRate: 0.01},
	}

	var baseline float64
	for i, policy := range policies {
		// Each run gets fresh clones: tasks carry mutable scheduling state.
		m := site.RunTrace(trace.Clone(), site.Config{
			Processors: spec.Processors,
			Policy:     policy,
		})
		if i == 0 {
			baseline = m.TotalYield
		}
		fmt.Printf("%-34s yield %12.0f   (%+7.2f%% vs FCFS)   mean delay %7.1f\n",
			policy.Name(), m.TotalYield, stats.Improvement(m.TotalYield, baseline), m.MeanDelay())
	}

	fmt.Println("\nWith unbounded penalties, greedily chasing the highest-value task")
	fmt.Println("(FirstPrice) backfires: urgent tasks rot in the queue and their")
	fmt.Println("penalties swamp the gains. Heuristics that weigh opportunity cost —")
	fmt.Println("SWPT and FirstReward at low alpha — keep the mix profitable, the")
	fmt.Println("paper's central result (Figure 5).")
}
