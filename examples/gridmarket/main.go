// Gridmarket: the Figure 1 economy in-process — a broker negotiates each
// task with three task-service sites of different sizes and admission
// postures, awards it to the best server bid, and contracts settle at
// completion with penalties for late delivery.
package main

import (
	"fmt"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/site"
	"repro/internal/workload"
)

func main() {
	// Three sites: a large risk-averse site, a mid-size balanced site, and
	// a small site that accepts everything (and pays for it in penalties).
	cfgs := []site.Config{
		{
			Processors:   8,
			Policy:       core.FirstReward{Alpha: 0.2, DiscountRate: 0.01},
			Admission:    admission.SlackThreshold{Threshold: 150},
			DiscountRate: 0.01,
		},
		{
			Processors:   4,
			Policy:       core.FirstReward{Alpha: 0.4, DiscountRate: 0.01},
			Admission:    admission.SlackThreshold{Threshold: 0},
			DiscountRate: 0.01,
		},
		{
			Processors:   2,
			Policy:       core.FirstPrice{},
			Admission:    admission.AcceptAll{},
			DiscountRate: 0.01,
		},
	}
	ex := market.NewExchange(market.BestYield{}, cfgs)

	// An overloaded stream: 600 jobs at 1.6x the combined capacity of the
	// three sites, so admission posture matters.
	spec := workload.Default()
	spec.Jobs = 600
	spec.Processors = 14 // combined capacity, for the load computation
	spec.Load = 1.6
	spec.ValueSkew = 3
	spec.DecaySkew = 5
	spec.Seed = 7
	trace, err := workload.Generate(spec)
	if err != nil {
		panic(err)
	}

	ex.ScheduleArrivals(trace.Clone())
	ex.Run()

	fmt.Printf("broker: %d negotiations, %d placed, %d declined by every site\n\n",
		ex.Broker.Negotiated, ex.Broker.Placed, ex.Broker.Declined)

	for i, s := range ex.Sites {
		m := s.Metrics()
		led := ex.Services[i].Ledger()
		fmt.Printf("%s  procs=%d  policy=%s  admission=%s\n",
			s.ID, s.Processors(), s.Config().Policy.Name(), s.Admission().Name())
		fmt.Printf("    awarded %d tasks, completed %d, yield %.0f (rate %.3f)\n",
			m.Accepted, m.Completed, m.TotalYield, m.YieldRate())
		fmt.Printf("    contracts settled %d, revenue %.0f, late %d, penalties %.0f\n\n",
			led.Settled, led.Revenue, led.Violations, led.Penalties)
	}

	fmt.Println("The risk-averse site earns the highest yield per processor by declining")
	fmt.Println("low-slack work; the accept-all site honors everything and pays penalties.")
}
