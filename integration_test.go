package repro

import (
	"math"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/site"
	"repro/internal/task"
	"repro/internal/wire"
	"repro/internal/workload"
)

// TestEndToEndSimulatedEconomy drives the complete in-process stack on one
// trace — generation, brokered negotiation across heterogeneous sites,
// value-based scheduling with admission control, contract settlement, and
// outcome analysis — and cross-checks the books between layers.
func TestEndToEndSimulatedEconomy(t *testing.T) {
	spec := workload.Default()
	spec.Jobs = 400
	spec.Processors = 12
	spec.Load = 1.5
	spec.ValueSkew = 3
	spec.DecaySkew = 5
	spec.Seed = 99
	tr, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}

	ex := market.NewExchange(market.BestYield{}, []site.Config{
		{Processors: 6, Policy: core.FirstReward{Alpha: 0.2, DiscountRate: 0.01},
			Admission: admission.SlackThreshold{Threshold: 100}, DiscountRate: 0.01},
		{Processors: 4, Policy: core.FirstReward{Alpha: 0.4, DiscountRate: 0.01},
			Admission: admission.SlackThreshold{Threshold: 0}, DiscountRate: 0.01},
		{Processors: 2, Policy: core.FirstPrice{}, Admission: admission.AcceptAll{}},
	})
	tasks := tr.Clone()
	ex.ScheduleArrivals(tasks)
	ex.Run()

	if ex.Broker.Negotiated != len(tasks) {
		t.Fatalf("negotiated %d of %d", ex.Broker.Negotiated, len(tasks))
	}
	if ex.Broker.Placed+ex.Broker.Declined != ex.Broker.Negotiated {
		t.Fatalf("broker accounting: %d+%d != %d", ex.Broker.Placed, ex.Broker.Declined, ex.Broker.Negotiated)
	}
	if ex.Broker.Placed == 0 {
		t.Fatal("nothing placed")
	}

	// Cross-layer conservation: the sites' yields equal the contracts'
	// settled prices, and every task ended terminal.
	var siteYield, contractRevenue float64
	completed := 0
	for i, s := range ex.Sites {
		m := s.Metrics()
		siteYield += m.TotalYield
		completed += m.Completed
		led := ex.Services[i].Ledger()
		contractRevenue += led.Revenue
		if led.Open != 0 {
			t.Fatalf("site %d: %d contracts still open", i, led.Open)
		}
	}
	if completed != ex.Broker.Placed {
		t.Fatalf("completed %d != placed %d", completed, ex.Broker.Placed)
	}
	if math.Abs(siteYield-contractRevenue) > 1e-6 {
		t.Fatalf("site yield %v != contract revenue %v", siteYield, contractRevenue)
	}
	for _, tk := range tasks {
		if tk.State != task.Completed && tk.State != task.Rejected {
			t.Fatalf("task %d ended in state %v", tk.ID, tk.State)
		}
	}

	// The analysis layer agrees with the market layer.
	rep := analysis.Analyze(tasks)
	if rep.Completed != completed {
		t.Fatalf("analysis completed %d != market %d", rep.Completed, completed)
	}
	if math.Abs(rep.TotalYield-siteYield) > 1e-6 {
		t.Fatalf("analysis yield %v != site yield %v", rep.TotalYield, siteYield)
	}
}

// TestEndToEndNetworkEconomy drives the same negotiation over real TCP:
// two site servers behind a broker daemon, a client placing a burst of
// tasks, settlements relayed back through the broker.
func TestEndToEndNetworkEconomy(t *testing.T) {
	mk := func(id string, procs int) *wire.Server {
		srv, err := wire.NewServer("127.0.0.1:0", wire.ServerConfig{
			SiteID:       id,
			Processors:   procs,
			Policy:       core.FirstReward{Alpha: 0.3, DiscountRate: 0.01},
			Admission:    admission.SlackThreshold{Threshold: -1e12},
			DiscountRate: 0.01,
			TimeScale:    200 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return srv
	}
	s1, s2 := mk("alpha", 3), mk("beta", 1)

	broker, err := wire.NewBrokerServer("127.0.0.1:0", wire.BrokerConfig{
		SiteAddrs: []string{s1.Addr(), s2.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { broker.Close() })

	client, err := wire.Dial(broker.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	settled := make(chan wire.Envelope, 16)
	client.SetOnSettled(func(e wire.Envelope) { settled <- e })

	const n = 10
	for i := 1; i <= n; i++ {
		runtime := float64(5 + i%3*10)
		bid := market.Bid{
			TaskID:  task.ID(i),
			Runtime: runtime,
			Value:   runtime * 8,
			Decay:   1,
			Bound:   math.Inf(1),
		}
		sb, ok, err := client.Propose(bid)
		if err != nil || !ok {
			t.Fatalf("propose %d: %v %v", i, ok, err)
		}
		if _, ok, err := client.Award(bid, sb); err != nil || !ok {
			t.Fatalf("award %d: %v %v", i, ok, err)
		}
	}

	var revenue float64
	for i := 0; i < n; i++ {
		select {
		case e := <-settled:
			revenue += e.FinalPrice
		case <-time.After(10 * time.Second):
			t.Fatalf("settlement %d never arrived", i)
		}
	}
	if broker.Placed != n {
		t.Errorf("broker placed %d, want %d", broker.Placed, n)
	}
	if s1.Completed+s2.Completed != n {
		t.Errorf("sites completed %d, want %d", s1.Completed+s2.Completed, n)
	}
	if revenue <= 0 {
		t.Errorf("revenue = %v, want positive", revenue)
	}
	if s1.Completed == 0 {
		t.Error("the larger site should have won some work")
	}
}
