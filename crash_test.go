package repro

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/task"
	"repro/internal/wire"
)

// siteProc is a real siteserver subprocess under test control.
type siteProc struct {
	cmd      *exec.Cmd
	addr     string
	diagAddr string
}

var listenRe = regexp.MustCompile(`listening on (\S+)`)
var diagRe = regexp.MustCompile(`diagnostics on http://(\S+)/metrics`)

// startSiteProc launches the compiled siteserver and waits for its listen
// (and diagnostics) address lines.
func startSiteProc(t *testing.T, bin string, args ...string) *siteProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &siteProc{cmd: cmd}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	wantDiag := false
	for _, a := range args {
		if a == "-metrics-addr" {
			wantDiag = true
		}
	}
	ready := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if m := listenRe.FindStringSubmatch(line); m != nil {
				p.addr = m[1]
			}
			if m := diagRe.FindStringSubmatch(line); m != nil {
				p.diagAddr = m[1]
			}
			if p.addr != "" && (!wantDiag || p.diagAddr != "") {
				ready <- nil
				// Keep draining so the child never blocks on a full pipe.
				for sc.Scan() {
				}
				return
			}
		}
		ready <- fmt.Errorf("siteserver exited before reporting its address")
	}()
	select {
	case err := <-ready:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("siteserver never reported its listen address")
	}
	return p
}

// TestCrashRecoverySIGKILL is the crash harness: a real siteserver process
// is SIGKILLed mid-load and restarted on the same data directory. The
// client's ledger and the recovered site's contract book must reconcile —
// every placed contract ends settled or explicitly defaulted with a penalty
// record, none is unknown or stuck open. With CRASH_METRICS_OUT set, the
// recovered server's /metrics scrape (including the site_recovery_* and
// site_contracts_* families) is written there for the CI artifact.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := filepath.Join(t.TempDir(), "siteserver")
	build := exec.Command("go", "build", "-o", bin, "./cmd/siteserver")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building siteserver: %v", err)
	}

	// The harness runs against the sharded book and negotiates the binary
	// codec on both the pre-crash and recovered connections: crash
	// recovery, settlement push, and ledger reconciliation must all hold
	// on the v2 wire exactly as on the v1 JSON path.
	dataDir := t.TempDir()
	common := []string{
		"-procs", "2", "-shards", "4", "-timescale", "2ms", "-admission", "accept-all",
		"-data-dir", dataDir, "-fsync", "always", "-quiet",
	}
	p1 := startSiteProc(t, bin, append([]string{"-addr", "127.0.0.1:0"}, common...)...)

	c, err := wire.DialConfig(p1.addr, wire.ClientConfig{Codec: wire.CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.NegotiatedCodec(); got != wire.CodecBinary {
		t.Fatalf("negotiated %q, want %q", got, wire.CodecBinary)
	}
	var mu sync.Mutex
	settledBefore := map[task.ID]float64{}
	c.SetOnSettled(func(e wire.Envelope) {
		mu.Lock()
		settledBefore[e.TaskID] = e.FinalPrice
		mu.Unlock()
	})

	// A mixed book: short tasks that settle before the kill, long runs that
	// are in flight at the kill, queued tasks behind them, and one bounded
	// task whose deadline cannot survive the outage.
	const n = 12
	placed := map[task.ID]market.ServerBid{}
	for i := 1; i <= n; i++ {
		runtime := 40 + float64(i%4)*120 // 80ms..700ms of wall clock
		bid := market.Bid{
			TaskID:  task.ID(i),
			Runtime: runtime,
			Value:   runtime * 10,
			Decay:   0.1,
			Bound:   math.Inf(1),
		}
		if i == n {
			bid.Runtime, bid.Value, bid.Decay, bid.Bound = 50, 100, 20, 40
		}
		sb, ok, err := c.Propose(bid)
		if err != nil || !ok {
			t.Fatalf("propose %d: %v %v", i, ok, err)
		}
		terms, ok, err := c.Award(bid, sb)
		if err != nil || !ok {
			t.Fatalf("award %d: %v %v", i, ok, err)
		}
		placed[bid.TaskID] = terms
	}

	// Let some short tasks settle, then kill mid-load with the queue still
	// deep and runs in flight.
	time.Sleep(250 * time.Millisecond)
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = p1.cmd.Process.Wait()
	c.Close()

	// Simulated outage, long enough to expire the bounded contract.
	time.Sleep(100 * time.Millisecond)

	flightPath := filepath.Join(t.TempDir(), "flight.json")
	p2 := startSiteProc(t, bin,
		append([]string{"-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
			"-crash-regime", "requeue", "-flight-out", flightPath}, common...)...)
	c2, err := wire.DialConfig(p2.addr, wire.ClientConfig{Codec: wire.CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	settledAfter := map[task.ID]float64{}
	settlements := make(chan wire.Envelope, n)
	c2.SetOnSettled(func(e wire.Envelope) { settlements <- e })

	// Reconcile the ledger: every placed contract must be accounted for.
	defaulted := map[task.ID]float64{}
	waiting := map[task.ID]bool{}
	for id := range placed {
		st, err := c2.Query(id)
		if err != nil {
			t.Fatalf("query %d: %v", id, err)
		}
		switch st.State {
		case wire.ContractSettled:
			settledAfter[id] = st.FinalPrice
		case wire.ContractDefaulted:
			defaulted[id] = st.FinalPrice
			if st.FinalPrice > 0 {
				t.Errorf("contract %d defaulted with positive price %v", id, st.FinalPrice)
			}
		case wire.ContractOpen:
			waiting[id] = true // query re-subscribed us to its settlement
		default:
			t.Errorf("contract %d in state %q: silently lost", id, st.State)
		}
	}
	mu.Lock()
	for id := range settledBefore {
		// Settlements pushed before the kill must also be on the recovered
		// books (they were journaled before the push).
		if _, ok := settledAfter[id]; !ok {
			t.Errorf("pre-crash settlement of %d missing from recovered book", id)
		}
	}
	mu.Unlock()

	deadline := time.After(60 * time.Second)
	for len(waiting) > 0 {
		select {
		case e := <-settlements:
			if !waiting[e.TaskID] {
				break
			}
			delete(waiting, e.TaskID)
			settledAfter[e.TaskID] = e.FinalPrice
		case <-deadline:
			t.Fatalf("recovered contracts never settled: %v", waiting)
		}
	}

	if len(settledAfter)+len(defaulted) != n {
		t.Fatalf("reconciliation: %d settled + %d defaulted != %d placed",
			len(settledAfter), len(defaulted), n)
	}
	if _, ok := defaulted[task.ID(n)]; !ok {
		t.Errorf("bounded contract %d should have defaulted during the outage", n)
	}

	// Scrape the recovered server's metrics: the recovery families must be
	// populated, and the scrape is the CI run's recovery artifact.
	resp, err := http.Get("http://" + p2.diagAddr + "/metrics")
	if err != nil {
		t.Fatalf("scraping metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		"site_recovery_seconds", "site_recovery_records_replayed",
		"site_contracts_recovered_total", "site_contracts_defaulted_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("recovered /metrics missing %s", want)
		}
	}
	if out := os.Getenv("CRASH_METRICS_OUT"); out != "" {
		if err := os.WriteFile(out, body, 0o644); err != nil {
			t.Errorf("writing CRASH_METRICS_OUT: %v", err)
		}
	}

	// The recovered server's economic ledger must reconcile with the
	// client's view of the same book: every placed contract is on it
	// (journal-seeded for pre-crash closures, re-opened for survivors),
	// every one ended settled or defaulted, no settlement arrived for a
	// contract the ledger never opened, and per-task realized yields match
	// the prices the client saw.
	lresp, err := http.Get("http://" + p2.diagAddr + "/debug/ledger")
	if err != nil {
		t.Fatalf("fetching ledger: %v", err)
	}
	lbody, err := io.ReadAll(lresp.Body)
	lresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.LedgerSnapshot
	if err := json.Unmarshal(lbody, &snap); err != nil {
		t.Fatalf("decoding ledger: %v", err)
	}
	if snap.Totals.UnknownSettles != 0 {
		t.Errorf("ledger booked %d settlements with no matching award", snap.Totals.UnknownSettles)
	}
	if snap.Totals.Opened != n {
		t.Errorf("ledger opened %d contracts, want all %d placed", snap.Totals.Opened, n)
	}
	if snap.Totals.Settled+snap.Totals.Defaulted != n || snap.Totals.Open != 0 {
		t.Errorf("ledger totals %+v: want %d settled+defaulted, none open", snap.Totals, n)
	}
	byTask := map[task.ID]obs.LedgerEntry{}
	for _, e := range snap.Entries {
		byTask[task.ID(e.Task)] = e
	}
	for id, price := range settledAfter {
		e, ok := byTask[id]
		if !ok {
			t.Errorf("settled contract %d missing from the ledger", id)
			continue
		}
		if e.Outcome != obs.OutcomeSettled || math.Abs(e.RealizedYield-price) > 1e-9 {
			t.Errorf("ledger entry %d = %q/%v, client saw settled/%v", id, e.Outcome, e.RealizedYield, price)
		}
	}
	for id, price := range defaulted {
		e, ok := byTask[id]
		if !ok {
			t.Errorf("defaulted contract %d missing from the ledger", id)
			continue
		}
		if e.Outcome != obs.OutcomeDefaulted || math.Abs(e.RealizedYield-price) > 1e-9 {
			t.Errorf("ledger entry %d = %q/%v, client saw defaulted/%v", id, e.Outcome, e.RealizedYield, price)
		}
	}

	// SIGUSR1 dumps the flight recorder (timeseries + ledger) without
	// stopping the server; the dump is the chaos job's CI artifact.
	if err := p2.cmd.Process.Signal(syscall.SIGUSR1); err != nil {
		t.Fatalf("signaling SIGUSR1: %v", err)
	}
	var dump obs.FlightDump
	dumpDeadline := time.Now().Add(10 * time.Second)
	for {
		raw, err := os.ReadFile(flightPath)
		if err == nil && json.Unmarshal(raw, &dump) == nil && len(dump.Timeseries) > 0 {
			break
		}
		if time.Now().After(dumpDeadline) {
			t.Fatalf("flight dump never appeared at %s (last error: %v)", flightPath, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if dump.Ledger.Totals.Opened != n {
		t.Errorf("flight dump ledger opened %d, want %d", dump.Ledger.Totals.Opened, n)
	}
	last := dump.Timeseries[len(dump.Timeseries)-1]
	if last.Values["site_contracts_recovered_total"] <= 0 {
		t.Errorf("flight timeseries never sampled the recovery counters: %v", last.Values)
	}
	if out := os.Getenv("CRASH_LEDGER_OUT"); out != "" {
		if err := os.WriteFile(out, lbody, 0o644); err != nil {
			t.Errorf("writing CRASH_LEDGER_OUT: %v", err)
		}
	}
	if out := os.Getenv("CRASH_TIMESERIES_OUT"); out != "" {
		raw, err := os.ReadFile(flightPath)
		if err == nil {
			err = os.WriteFile(out, raw, 0o644)
		}
		if err != nil {
			t.Errorf("writing CRASH_TIMESERIES_OUT: %v", err)
		}
	}
}
