package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/site"
	"repro/internal/workload"
)

// taskKey is the static identity of a submitted bid — everything except
// the wall-clock-dependent arrival stamp and dynamic scheduling state.
type taskKey struct {
	id                         uint64
	runtime, value, decay, bnd float64
	class                      int
	cohort                     string
	client                     int
}

func staticKeys(tr *workload.Trace) []taskKey {
	out := make([]taskKey, len(tr.Tasks))
	for i, t := range tr.Tasks {
		out[i] = taskKey{uint64(t.ID), t.Runtime, t.Value, t.Decay, t.Bound,
			int(t.Class), t.Cohort, t.Client}
	}
	return out
}

// TestRecordReplayBitIdentical is the calibration-loop acceptance test: a
// live gridclient run records the bid stream it submitted over TCP; that
// trace replays deterministically into the simulator, and replaying it
// into a fresh TCP service reproduces the identical bid stream (same
// tasks, same submission order) as shown by a second recording.
func TestRecordReplayBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	binDir := t.TempDir()
	siteBin := filepath.Join(binDir, "siteserver")
	clientBin := filepath.Join(binDir, "gridclient")
	for _, b := range []struct{ bin, pkg string }{
		{siteBin, "./cmd/siteserver"},
		{clientBin, "./cmd/gridclient"},
	} {
		build := exec.Command("go", "build", "-o", b.bin, b.pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			t.Fatalf("building %s: %v", b.pkg, err)
		}
	}

	runClient := func(args ...string) {
		t.Helper()
		cmd := exec.Command(clientBin, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("gridclient %v: %v", args, err)
		}
	}
	serverArgs := []string{"-addr", "127.0.0.1:0", "-procs", "2",
		"-timescale", "2ms", "-admission", "accept-all", "-quiet"}

	// Run 1: live generation, recorded.
	t1Path := filepath.Join(binDir, "t1.json")
	p1 := startSiteProc(t, siteBin, append(serverArgs, "-data-dir", t.TempDir())...)
	runClient("-sites", p1.addr, "-n", "25", "-seed", "5",
		"-interarrival", "4ms", "-timescale", "2ms",
		"-reconcile", "250ms", "-record", t1Path)

	t1, err := workload.ReadFile(t1Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Tasks) != 25 {
		t.Fatalf("recorded %d tasks, want 25", len(t1.Tasks))
	}
	prev := -1.0
	for _, tk := range t1.Tasks {
		if tk.Arrival < prev {
			t.Fatalf("recorded arrivals not monotone at task %d", tk.ID)
		}
		prev = tk.Arrival
	}

	// The recording replays deterministically into the simulator: two
	// RunTrace passes over clones must agree exactly.
	cfg := site.Config{Processors: 2, Policy: core.FirstReward{Alpha: 0.3, DiscountRate: 0.01}}
	m1 := site.RunTrace(t1.Clone(), cfg)
	m2 := site.RunTrace(t1.Clone(), cfg)
	if m1.TotalYield != m2.TotalYield || m1.Completed != m2.Completed {
		t.Fatalf("sim replay diverged: %v/%d vs %v/%d",
			m1.TotalYield, m1.Completed, m2.TotalYield, m2.Completed)
	}

	// Run 2: replay the recording into a fresh TCP service, recording
	// again. The second recording must carry the identical bid stream.
	t2Path := filepath.Join(binDir, "t2.json")
	p2 := startSiteProc(t, siteBin, append(serverArgs, "-data-dir", t.TempDir())...)
	runClient("-sites", p2.addr, "-timescale", "2ms",
		"-reconcile", "250ms", "-replay", t1Path, "-record", t2Path)

	t2, err := workload.ReadFile(t2Path)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := staticKeys(t1), staticKeys(t2)
	if len(k1) != len(k2) {
		t.Fatalf("replay submitted %d tasks, original %d", len(k2), len(k1))
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("submission %d differs between record and replay:\n  t1: %+v\n  t2: %+v",
				i, k1[i], k2[i])
		}
	}
}
