// Command siteserver runs one network task-service site speaking the
// Figure 1 negotiation protocol (JSON over TCP). Pair it with gridclient,
// or drive it from any newline-delimited-JSON client.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7600", "listen address")
		id       = flag.String("id", "site-0", "site identifier")
		procs    = flag.Int("procs", 4, "processors")
		alpha    = flag.Float64("alpha", 0.3, "FirstReward alpha")
		discount = flag.Float64("discount", 0.01, "discount rate")
		slack    = flag.Float64("slack", 0, "slack admission threshold")
		useAdm   = flag.Bool("admission", true, "enable slack-threshold admission control")
		scale    = flag.Duration("timescale", 10*time.Millisecond, "wall-clock duration of one simulation time unit")
		idle     = flag.Duration("idle-timeout", 2*time.Minute, "close connections quiet for this long (negative disables)")
		wtimeout = flag.Duration("write-timeout", 10*time.Second, "per-write deadline for replies and settlements (negative disables)")
		quiet    = flag.Bool("quiet", false, "suppress serving logs")
	)
	flag.Parse()

	cfg := wire.ServerConfig{
		SiteID:       *id,
		Processors:   *procs,
		Policy:       core.FirstReward{Alpha: *alpha, DiscountRate: *discount},
		DiscountRate: *discount,
		TimeScale:    *scale,
		IdleTimeout:  *idle,
		WriteTimeout: *wtimeout,
	}
	if *useAdm {
		cfg.Admission = admission.SlackThreshold{Threshold: *slack}
	}
	if !*quiet {
		cfg.Logger = log.New(os.Stderr, "", log.Ltime|log.Lmicroseconds)
	}

	srv, err := wire.NewServer(*addr, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "siteserver:", err)
		os.Exit(1)
	}
	fmt.Printf("site %s listening on %s (%d processors, %s)\n", *id, srv.Addr(), *procs, cfg.Policy.Name())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	_ = srv.Close()
}
