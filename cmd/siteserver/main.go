// Command siteserver runs one network task-service site speaking the
// Figure 1 negotiation protocol (JSON over TCP). Pair it with gridclient,
// or drive it from any newline-delimited-JSON client.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/wire"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7600", "listen address")
		id        = flag.String("id", "site-0", "site identifier")
		procs     = flag.Int("procs", 4, "processors")
		shards    = flag.Int("shards", 1, "task-book shards (1 = single book; >1 spreads the book across cores)")
		codecs    = flag.String("codecs", "", "comma-separated codecs offered to v2 clients (empty allows every registered codec; json is always available)")
		policy    = flag.String("policy", "firstreward:alpha=0.3,rate=0.01", "scheduling policy spec (see core.ParseSpec)")
		admSpec   = flag.String("admission", "slack:threshold=0", "admission policy spec (accept-all, slack:threshold=X, min-yield:threshold=X)")
		discount  = flag.Float64("discount", 0.01, "discount rate for quoting expected yield")
		scale     = flag.Duration("timescale", 10*time.Millisecond, "wall-clock duration of one simulation time unit")
		maxPend   = flag.Int("max-pending", 0, "pending-book depth cap: past it bids are shed with a priced reject (0 disables the overload valve)")
		maxBids   = flag.Int("max-inflight-bids", 0, "cap on concurrently evaluating bid quotes (0 disables)")
		idle      = flag.Duration("idle-timeout", 2*time.Minute, "close connections quiet for this long (negative disables)")
		wtimeout  = flag.Duration("write-timeout", 10*time.Second, "per-write deadline for replies and settlements (negative disables)")
		quiet     = flag.Bool("quiet", false, "suppress serving logs")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
		metrics   = flag.String("metrics-addr", "", "serve /metrics, /healthz, and /debug/pprof on this address (empty disables)")
		trace     = flag.Bool("trace", false, "emit task-lifecycle trace events (JSON) to stderr alongside logs")
		dataDir   = flag.String("data-dir", "", "journal contracts here for crash recovery (empty runs memory-only)")
		fsync     = flag.String("fsync", "always", "journal sync policy: always|interval|never")
		regime    = flag.String("crash-regime", wire.RegimeRequeue, "recovery of runs in flight at a crash: requeue|default")
		flightOut = flag.String("flight-out", "", "write the flight-recorder dump (timeseries + ledger JSON) here on SIGUSR1 and at exit (empty disables the file; the recorder itself always runs)")
		flightInt = flag.Duration("flight-interval", obs.DefaultFlightInterval, "flight-recorder sampling interval")
	)
	flag.Parse()

	lv, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "siteserver:", err)
		os.Exit(2)
	}

	pol, err := core.ParseSpec(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "siteserver:", err)
		os.Exit(2)
	}
	adm, err := admission.ParseSpec(*admSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "siteserver:", err)
		os.Exit(2)
	}

	fsyncPolicy, err := durable.ParseFsyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "siteserver:", err)
		os.Exit(2)
	}

	// The economic flight recorder: the contract ledger books every award
	// and settlement (served at /debug/ledger), and the timeseries ring
	// samples every registered family (served at /debug/timeseries).
	ledger := obs.NewLedger(obs.LedgerConfig{Site: *id, Policy: pol.Name(), Registry: obs.Default})
	flight := obs.NewFlight(obs.FlightConfig{Registry: obs.Default, Interval: *flightInt})
	defer flight.Stop()

	var allowCodecs []string
	if *codecs != "" {
		for _, name := range strings.Split(*codecs, ",") {
			allowCodecs = append(allowCodecs, strings.TrimSpace(name))
		}
	}

	cfg := wire.ServerConfig{
		SiteID:          *id,
		Processors:      *procs,
		Shards:          *shards,
		Codecs:          allowCodecs,
		Policy:          pol,
		Admission:       adm,
		DiscountRate:    *discount,
		TimeScale:       *scale,
		MaxPending:      *maxPend,
		MaxInflightBids: *maxBids,
		IdleTimeout:     *idle,
		WriteTimeout:    *wtimeout,
		Metrics:         obs.Default,
		Ledger:          ledger,
		DataDir:         *dataDir,
		Fsync:           fsyncPolicy,
		CrashRegime:     *regime,
	}
	logger := obs.NewLogger(os.Stderr, lv, "siteserver")
	if !*quiet {
		cfg.Logger = logger
	}
	if *trace {
		// Share the logger's stream so trace and log lines interleave
		// whole; with -quiet the tracer gets its own stderr stream.
		if cfg.Logger != nil {
			cfg.Tracer = obs.TracerFor(cfg.Logger, "siteserver")
		} else {
			cfg.Tracer = obs.NewTracer(os.Stderr, "siteserver")
		}
	}

	srv, err := wire.NewServer(*addr, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "siteserver:", err)
		os.Exit(1)
	}
	if *metrics != "" {
		diag, err := obs.ServeDiag(*metrics, obs.DiagConfig{Logger: logger, Ledger: ledger, Flight: flight})
		if err != nil {
			fmt.Fprintln(os.Stderr, "siteserver:", err)
			os.Exit(1)
		}
		defer diag.Close()
		fmt.Printf("diagnostics on http://%s/metrics\n", diag.Addr())
	}
	fmt.Printf("site %s listening on %s (%d processors, %d shards, %s)\n", *id, srv.Addr(), *procs, *shards, cfg.Policy.Name())
	if *dataDir != "" {
		fmt.Printf("journaling contracts to %s (fsync=%s, crash-regime=%s)\n", *dataDir, fsyncPolicy, *regime)
	}

	dump := func(why string) {
		if *flightOut == "" {
			return
		}
		if err := obs.WriteFlightDump(*flightOut, flight, ledger); err != nil {
			logger.Warn("flight dump failed", "path", *flightOut, "err", err.Error())
			return
		}
		fmt.Printf("flight dump (%s) written to %s\n", why, *flightOut)
	}

	// SIGTERM/SIGINT run the full Close path: the journal tail is flushed
	// and the clean-shutdown marker written, so the next start replays
	// without a torn-tail scan and resumes every open contract. SIGUSR1
	// dumps the flight recorder without stopping the server.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGUSR1)
	for s := range sig {
		if s == syscall.SIGUSR1 {
			dump("SIGUSR1")
			continue
		}
		break
	}
	fmt.Println("shutting down")
	_ = srv.Close()
	dump("shutdown")
}
