// Command obstop is a polling text dashboard over a fleet of task-service
// daemons. Each interval it scrapes every target's /metrics exposition and
// /debug/ledger snapshot and renders one row per site: queue depth, running
// tasks, live connections, quote rate, contract book, and the
// realized-vs-expected yield picture from the economic ledger.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// siteSample is one poll of one target's diagnostics endpoints.
type siteSample struct {
	target string
	site   string
	err    error
	at     time.Time

	queue   float64
	running float64
	conns   float64
	quotes  float64 // cumulative bid RPCs; rate comes from poll deltas

	ledger    obs.LedgerSnapshot
	hasLedger bool

	// Broker routing table (DESIGN.md §16): per backend site, the age of
	// its last load digest and the cumulative bids routed to it. Empty for
	// plain site daemons.
	routes map[string]routeStat
}

// routeStat is one backend site's slice of a broker's routing state.
type routeStat struct {
	age    float64 // seconds since the site's last digest push
	hasAge bool
	routed float64 // cumulative bids routed to the site
}

// route returns the named backend's routing slot, allocating the map on
// first use so plain site rows carry none.
func (s *siteSample) route(site string) routeStat {
	if s.routes == nil {
		s.routes = make(map[string]routeStat)
	}
	return s.routes[site]
}

// scrape polls one target. A metrics failure marks the whole row down; a
// ledger failure only blanks the economic columns (brokers serve /metrics
// but book no contracts).
func scrape(client *http.Client, target string) siteSample {
	s := siteSample{target: target, site: target, at: time.Now()}
	resp, err := client.Get("http://" + target + "/metrics")
	if err != nil {
		s.err = err
		return s
	}
	fams, err := obs.ParsePrometheus(resp.Body)
	resp.Body.Close()
	if err != nil {
		s.err = err
		return s
	}
	for _, f := range fams {
		for _, sm := range f.Samples {
			switch f.Name {
			case "site_queue_depth":
				s.queue += sm.Value
			case "site_running_tasks":
				s.running += sm.Value
			case "wire_connections":
				s.conns += sm.Value
			case "wire_rpc_total":
				if sm.Label("type") == "bid" {
					s.quotes += sm.Value
				}
			case "broker_digest_age_seconds":
				if site := sm.Label("site"); site != "" {
					st := s.route(site)
					st.age, st.hasAge = sm.Value, true
					s.routes[site] = st
				}
				continue
			case "broker_routed_total":
				if site := sm.Label("site"); site != "" {
					st := s.route(site)
					st.routed = sm.Value
					s.routes[site] = st
				}
				continue
			}
			if site := sm.Label("site"); site != "" {
				s.site = site
			}
		}
	}
	lr, err := client.Get("http://" + target + "/debug/ledger")
	if err != nil {
		return s
	}
	defer lr.Body.Close()
	if lr.StatusCode == http.StatusOK && json.NewDecoder(lr.Body).Decode(&s.ledger) == nil {
		s.hasLedger = true
		if s.ledger.Site != "" {
			s.site = s.ledger.Site
		}
	}
	return s
}

// render writes the fleet table. prev holds the previous poll per target
// for rate columns; a nil entry renders the rate blank.
func render(w io.Writer, rows []siteSample, prev map[string]siteSample) {
	fmt.Fprintf(w, "%-14s %6s %5s %5s %8s %6s %7s %7s %10s %10s %10s\n",
		"SITE", "QUEUE", "RUN", "CONN", "QUOTE/s", "OPEN", "SETTLED", "DFLT",
		"EXPECTED", "REALIZED", "EXPOSURE")
	for _, r := range rows {
		if r.err != nil {
			fmt.Fprintf(w, "%-14s DOWN: %v\n", r.target, r.err)
			continue
		}
		rate := "-"
		if p, ok := prev[r.target]; ok && p.err == nil {
			if dt := r.at.Sub(p.at).Seconds(); dt > 0 {
				rate = fmt.Sprintf("%.1f", (r.quotes-p.quotes)/dt)
			}
		}
		open, settled, dflt := "-", "-", "-"
		expected, realized, exposure := "-", "-", "-"
		if r.hasLedger {
			t := r.ledger.Totals
			open = fmt.Sprintf("%d", t.Open)
			settled = fmt.Sprintf("%d", t.Settled)
			dflt = fmt.Sprintf("%d", t.Defaulted)
			expected = fmt.Sprintf("%.2f", t.ExpectedYield)
			realized = fmt.Sprintf("%.2f", t.RealizedYield)
			exposure = fmt.Sprintf("%.2f", t.Exposure)
		}
		fmt.Fprintf(w, "%-14s %6.0f %5.0f %5.0f %8s %6s %7s %7s %10s %10s %10s\n",
			r.site, r.queue, r.running, r.conns, rate, open, settled, dflt,
			expected, realized, exposure)
		renderRoutes(w, r, prev)
	}
}

// routeShare returns the bids routed to one backend since the previous
// poll and the total routed across all backends in the same window
// (cumulative values on the first poll).
func (r siteSample) routeShare(site string, prev map[string]siteSample) (float64, float64) {
	cur := r.routes[site].routed
	base, total := 0.0, 0.0
	p, ok := prev[r.target]
	if ok && p.err == nil && p.routes != nil {
		base = p.routes[site].routed
	}
	for s2, st := range r.routes {
		d := st.routed
		if ok && p.err == nil && p.routes != nil {
			d -= p.routes[s2].routed
		}
		total += d
	}
	return cur - base, total
}

// renderRoutes appends a broker row's per-site routing sub-table: each
// backend's digest age and its share of the bids routed since the last
// poll. A digest aging past the TTL is a site the broker is about to
// drop from the ranking.
func renderRoutes(w io.Writer, r siteSample, prev map[string]siteSample) {
	if len(r.routes) == 0 {
		return
	}
	sites := make([]string, 0, len(r.routes))
	for s := range r.routes {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	for _, site := range sites {
		st := r.routes[site]
		age := "-"
		if st.hasAge {
			age = fmt.Sprintf("%.0fms", st.age*1e3)
		}
		share := "-"
		if routed, total := r.routeShare(site, prev); total > 0 {
			share = fmt.Sprintf("%.0f%%", 100*routed/total)
		}
		fmt.Fprintf(w, "  └ %-24s digest %7s   route share %5s\n", site, age, share)
	}
}

func main() {
	var (
		targets  = flag.String("targets", "", "comma-separated diagnostics addresses (host:port of each daemon's -metrics-addr; required)")
		interval = flag.Duration("interval", 2*time.Second, "poll interval")
		count    = flag.Int("count", 0, "exit after this many polls (0 = run until interrupted)")
		once     = flag.Bool("once", false, "poll once, print the table, and exit (same as -count 1)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request HTTP timeout")
		noClear  = flag.Bool("no-clear", false, "append tables instead of redrawing in place")
	)
	flag.Parse()
	if *targets == "" {
		fmt.Fprintln(os.Stderr, "obstop: -targets is required")
		flag.Usage()
		os.Exit(2)
	}
	var addrs []string
	for _, a := range strings.Split(*targets, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	polls := *count
	if *once {
		polls = 1
	}
	client := &http.Client{Timeout: *timeout}
	prev := make(map[string]siteSample)
	for n := 0; ; n++ {
		if n > 0 {
			time.Sleep(*interval)
		}
		rows := make([]siteSample, len(addrs))
		for i, a := range addrs {
			rows[i] = scrape(client, a)
		}
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].site < rows[j].site })
		if !*noClear && polls != 1 {
			fmt.Print("\033[2J\033[H")
		}
		fmt.Printf("obstop %s  (%d targets, every %s)\n", time.Now().Format("15:04:05"), len(addrs), *interval)
		render(os.Stdout, rows, prev)
		for _, r := range rows {
			prev[r.target] = r
		}
		if polls > 0 && n+1 >= polls {
			return
		}
	}
}
