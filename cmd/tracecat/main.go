// Command tracecat analyzes task-lifecycle trace streams: it reconstructs
// each task's critical path from the span-structured events the daemons and
// simulators emit (-trace / -trace-out), audits the span trees for causal
// holes, and reports where the latency went — negotiation, queue wait,
// execution, or settlement.
//
// Feed it one file or several (client, broker, and site streams of the same
// run concatenate into whole cross-process paths):
//
//	tracecat client.trace site.trace
//	gridclient -trace 2>both.trace; tracecat -clock wall both.trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	var (
		clock  = flag.String("clock", "wall", "latency clock: wall (RFC3339 stamps, cross-process) or sim (emitters' simulation time)")
		asJSON = flag.Bool("json", false, "emit the per-task paths and breakdowns as JSON instead of the report")
		strict = flag.Bool("strict", false, "exit non-zero if any path has orphan spans or an incomplete bid->settle chain ends settled")
	)
	flag.Parse()
	if *clock != "wall" && *clock != "sim" {
		fmt.Fprintf(os.Stderr, "tracecat: unknown clock %q\n", *clock)
		os.Exit(2)
	}

	var events []obs.SpanEvent
	if flag.NArg() == 0 {
		evs, err := obs.ReadTrace(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecat: stdin:", err)
			os.Exit(1)
		}
		events = evs
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecat:", err)
			os.Exit(1)
		}
		evs, err := obs.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecat: %s: %v\n", path, err)
			os.Exit(1)
		}
		events = append(events, evs...)
	}

	an := obs.BuildPaths(events)
	if *asJSON {
		if err := writeJSON(os.Stdout, an, *clock); err != nil {
			fmt.Fprintln(os.Stderr, "tracecat:", err)
			os.Exit(1)
		}
	} else {
		an.WriteBreakdownReport(os.Stdout, *clock)
	}
	if *strict {
		bad := 0
		for i := range an.Paths {
			p := &an.Paths[i]
			if len(p.Orphans) > 0 {
				fmt.Fprintf(os.Stderr, "tracecat: task %d: orphan spans %v\n", p.Task, p.Orphans)
				bad++
			} else if p.Outcome == "settled" && !p.Complete() {
				fmt.Fprintf(os.Stderr, "tracecat: task %d: settled but its bid->settle chain has holes\n", p.Task)
				bad++
			}
		}
		if bad > 0 {
			os.Exit(1)
		}
	}
}

// pathJSON is the machine-readable per-task record.
type pathJSON struct {
	Task      uint64        `json:"task"`
	Req       string        `json:"req,omitempty"`
	Site      string        `json:"site,omitempty"`
	Cohort    string        `json:"cohort,omitempty"`
	Outcome   string        `json:"outcome"`
	Complete  bool          `json:"complete"`
	Orphans   []string      `json:"orphans,omitempty"`
	Breakdown obs.Breakdown `json:"breakdown"`
}

func writeJSON(w io.Writer, an *obs.TraceAnalysis, clock string) error {
	out := struct {
		Events  int        `json:"events"`
		Orphans int        `json:"orphans"`
		Paths   []pathJSON `json:"paths"`
	}{Events: an.Events, Orphans: an.Orphans}
	for i := range an.Paths {
		p := &an.Paths[i]
		out.Paths = append(out.Paths, pathJSON{
			Task: p.Task, Req: p.Req, Site: p.Site, Cohort: p.Cohort,
			Outcome: p.Outcome, Complete: p.Complete(), Orphans: p.Orphans,
			Breakdown: p.Breakdown(clock),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
