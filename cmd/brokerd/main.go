// Command brokerd runs a standalone negotiation broker (Figure 1): clients
// submit bids to the broker exactly as they would to a site, and the
// broker fans each bid out to its configured task-service sites, selects
// the best server bid, forwards the award, and relays settlements.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/wire"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7700", "listen address for clients")
		sites     = flag.String("sites", "127.0.0.1:7600", "comma-separated site addresses")
		selector  = flag.String("selector", "best-yield", "server-bid selector spec: best-yield|earliest")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request timeout against each site")
		retries   = flag.Int("retries", 2, "per-site retries on transient failures (negative disables)")
		backoff   = flag.Duration("backoff", 50*time.Millisecond, "first retry delay, doubling per attempt")
		workers   = flag.Int("quote-workers", 0, "max sites quoted concurrently per exchange (0 = default of 8)")
		codec     = flag.String("codec", "", "codec to request when dialing sites: json|binary|v1 (empty = negotiate binary with JSON fallback, v1 = plain v1 JSON with no handshake)")
		route     = flag.String("route", wire.RouteTopK, "quote routing policy: topk (digest-ranked top-k sites) | fanout (every breaker-admitted site)")
		topk      = flag.Int("topk", 4, "candidate sites per bid under -route=topk (0 = full fan-out, same as -route=fanout)")
		digestInt = flag.Duration("digest-interval", 0, "load-digest push cadence requested from sites (0 = default of 250ms)")
		peers     = flag.String("peers", "", "comma-separated peer broker addresses for consistent-hash sharding (empty = standalone)")
		advertise = flag.String("advertise", "", "this broker's own address in the peer ring (empty = -addr)")
		cbFails   = flag.Int("circuit-failures", 0, "consecutive site failures that trip its circuit breaker open (0 = default of 3, negative disables)")
		cbCool    = flag.Duration("circuit-cooldown", 0, "open-breaker wait before a half-open probe (0 = default of 1s)")
		retryBud  = flag.Float64("retry-budget", 0, "retry credit earned per successful site exchange (0 = default of 0.25, negative = unlimited blind retry)")
		hedge     = flag.Duration("hedge-delay", 0, "hedged-quote delay per site (0 = adaptive from latency quantiles, negative disables hedging)")
		parked    = flag.Int("parked-settlements", 0, "settlements parked for disconnected owners, recoverable by query (0 = default of 64, negative disables)")
		idle      = flag.Duration("idle-timeout", 2*time.Minute, "close client connections quiet for this long (negative disables)")
		quiet     = flag.Bool("quiet", false, "suppress brokering logs")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
		metrics   = flag.String("metrics-addr", "", "serve /metrics, /healthz, and /debug/pprof on this address (empty disables)")
		trace     = flag.Bool("trace", false, "emit task-lifecycle trace events (JSON) to stderr alongside logs")
		flightOut = flag.String("flight-out", "", "write the flight-recorder timeseries dump here on SIGUSR1 and at exit (empty disables the file; the recorder itself always runs)")
		flightInt = flag.Duration("flight-interval", obs.DefaultFlightInterval, "flight-recorder sampling interval")
	)
	flag.Parse()

	sel, err := market.ParseSelector(*selector)
	if err != nil {
		fmt.Fprintln(os.Stderr, "brokerd:", err)
		os.Exit(2)
	}
	lv, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "brokerd:", err)
		os.Exit(2)
	}

	if *route != wire.RouteTopK && *route != wire.RouteFanout {
		fmt.Fprintf(os.Stderr, "brokerd: unknown -route %q (want %s or %s)\n", *route, wire.RouteTopK, wire.RouteFanout)
		os.Exit(2)
	}
	if *topk <= 0 {
		// k=0 means "quote everyone" — exactly fan-out.
		*route = wire.RouteFanout
	}

	cfg := wire.BrokerConfig{
		Selector:          sel,
		RequestTimeout:    *timeout,
		Retries:           *retries,
		Backoff:           *backoff,
		QuoteWorkers:      *workers,
		IdleTimeout:       *idle,
		Metrics:           obs.Default,
		SiteCodec:         *codec,
		Route:             *route,
		TopK:              *topk,
		DigestInterval:    *digestInt,
		CircuitFailures:   *cbFails,
		CircuitCooldown:   *cbCool,
		RetryBudget:       *retryBud,
		HedgeDelay:        *hedge,
		ParkedSettlements: *parked,
	}
	for _, sa := range strings.Split(*sites, ",") {
		cfg.SiteAddrs = append(cfg.SiteAddrs, strings.TrimSpace(sa))
	}
	if *peers != "" {
		for _, pa := range strings.Split(*peers, ",") {
			if pa = strings.TrimSpace(pa); pa != "" {
				cfg.Peers = append(cfg.Peers, pa)
			}
		}
		cfg.SelfID = *advertise
		if cfg.SelfID == "" {
			cfg.SelfID = *addr
		}
	}
	logger := obs.NewLogger(os.Stderr, lv, "brokerd")
	if !*quiet {
		cfg.Logger = logger
	}
	if *trace {
		if cfg.Logger != nil {
			cfg.Tracer = obs.TracerFor(cfg.Logger, "brokerd")
		} else {
			cfg.Tracer = obs.NewTracer(os.Stderr, "brokerd")
		}
	}

	// The flight recorder samples every registered family on a fixed
	// interval; /debug/timeseries serves the ring, SIGUSR1 dumps it.
	flight := obs.NewFlight(obs.FlightConfig{Registry: obs.Default, Interval: *flightInt})
	defer flight.Stop()

	b, err := wire.NewBrokerServer(*addr, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "brokerd:", err)
		os.Exit(1)
	}
	if *metrics != "" {
		diag, err := obs.ServeDiag(*metrics, obs.DiagConfig{Logger: logger, Flight: flight})
		if err != nil {
			fmt.Fprintln(os.Stderr, "brokerd:", err)
			os.Exit(1)
		}
		defer diag.Close()
		fmt.Printf("diagnostics on http://%s/metrics\n", diag.Addr())
	}
	fmt.Printf("broker listening on %s for %d site(s), route=%s", b.Addr(), len(cfg.SiteAddrs), cfg.Route)
	if cfg.Route == wire.RouteTopK {
		fmt.Printf(" k=%d", cfg.TopK)
	}
	if len(cfg.Peers) > 0 {
		fmt.Printf(", %d peer(s) as %s", len(cfg.Peers), cfg.SelfID)
	}
	fmt.Println()

	dump := func(why string) {
		if *flightOut == "" {
			return
		}
		if err := obs.WriteFlightDump(*flightOut, flight, nil); err != nil {
			logger.Warn("flight dump failed", "path", *flightOut, "err", err.Error())
			return
		}
		fmt.Printf("flight dump (%s) written to %s\n", why, *flightOut)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGUSR1)
	for s := range sig {
		if s == syscall.SIGUSR1 {
			dump("SIGUSR1")
			continue
		}
		break
	}
	fmt.Println("shutting down")
	_ = b.Close()
	dump("shutdown")
}
