// Command brokerd runs a standalone negotiation broker (Figure 1): clients
// submit bids to the broker exactly as they would to a site, and the
// broker fans each bid out to its configured task-service sites, selects
// the best server bid, forwards the award, and relays settlements.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7700", "listen address for clients")
		sites    = flag.String("sites", "127.0.0.1:7600", "comma-separated site addresses")
		selector = flag.String("selector", "best-yield", "server-bid selector spec: best-yield|earliest")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request timeout against each site")
		retries  = flag.Int("retries", 2, "per-site retries on transient failures (negative disables)")
		backoff  = flag.Duration("backoff", 50*time.Millisecond, "first retry delay, doubling per attempt")
		workers  = flag.Int("quote-workers", 0, "max sites quoted concurrently per exchange (0 = default of 8)")
		idle     = flag.Duration("idle-timeout", 2*time.Minute, "close client connections quiet for this long (negative disables)")
		quiet    = flag.Bool("quiet", false, "suppress brokering logs")
		logLevel = flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
		metrics  = flag.String("metrics-addr", "", "serve /metrics, /healthz, and /debug/pprof on this address (empty disables)")
		trace    = flag.Bool("trace", false, "emit task-lifecycle trace events (JSON) to stderr alongside logs")
	)
	flag.Parse()

	sel, err := market.ParseSelector(*selector)
	if err != nil {
		fmt.Fprintln(os.Stderr, "brokerd:", err)
		os.Exit(2)
	}
	lv, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "brokerd:", err)
		os.Exit(2)
	}

	cfg := wire.BrokerConfig{
		Selector:       sel,
		RequestTimeout: *timeout,
		Retries:        *retries,
		Backoff:        *backoff,
		QuoteWorkers:   *workers,
		IdleTimeout:    *idle,
		Metrics:        obs.Default,
	}
	for _, sa := range strings.Split(*sites, ",") {
		cfg.SiteAddrs = append(cfg.SiteAddrs, strings.TrimSpace(sa))
	}
	logger := obs.NewLogger(os.Stderr, lv, "brokerd")
	if !*quiet {
		cfg.Logger = logger
	}
	if *trace {
		if cfg.Logger != nil {
			cfg.Tracer = obs.TracerFor(cfg.Logger, "brokerd")
		} else {
			cfg.Tracer = obs.NewTracer(os.Stderr, "brokerd")
		}
	}

	b, err := wire.NewBrokerServer(*addr, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "brokerd:", err)
		os.Exit(1)
	}
	if *metrics != "" {
		diag, err := obs.ServeDiag(*metrics, obs.DiagConfig{Logger: logger})
		if err != nil {
			fmt.Fprintln(os.Stderr, "brokerd:", err)
			os.Exit(1)
		}
		defer diag.Close()
		fmt.Printf("diagnostics on http://%s/metrics\n", diag.Addr())
	}
	fmt.Printf("broker listening on %s for %d site(s)\n", b.Addr(), len(cfg.SiteAddrs))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	_ = b.Close()
}
