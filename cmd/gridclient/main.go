// Command gridclient submits a stream of task bids to one or more
// siteserver instances, negotiating each placement per Figure 1 and
// reporting the contracts and settlements it obtains.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/task"
	"repro/internal/wire"
	"repro/internal/workload"
)

func main() {
	var (
		sites       = flag.String("sites", "127.0.0.1:7600", "comma-separated site addresses")
		n           = flag.Int("n", 20, "tasks to submit")
		seed        = flag.Int64("seed", 1, "workload seed")
		mean        = flag.Duration("interarrival", 200*time.Millisecond, "mean wall-clock gap between submissions")
		scale       = flag.Duration("timescale", 10*time.Millisecond, "wall-clock duration of one simulation time unit (must match the servers)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request timeout against each site")
		codec       = flag.String("codec", "", "codec to request from each site: json|binary (empty = plain v1 JSON, no handshake)")
		retries     = flag.Int("retries", 2, "per-site retries on transient failures (negative disables)")
		backoff     = flag.Duration("backoff", 50*time.Millisecond, "first retry delay, doubling per attempt")
		selector    = flag.String("selector", "best-yield", "server-bid selector spec: best-yield|earliest")
		deadlineBud = flag.Duration("deadline", 0, "deadline budget minted on each bid; it shrinks per hop and sites refuse to quote spent work (0 disables)")
		reconcile   = flag.Duration("reconcile", 2*time.Second, "poll outstanding contracts this often while draining (0 disables)")
		logLevel    = flag.String("log-level", "warn", "minimum log level: debug|info|warn|error")
		metrics     = flag.String("metrics-addr", "", "serve /metrics, /healthz, and /debug/pprof on this address (empty disables)")
		trace       = flag.Bool("trace", false, "emit task-lifecycle trace events (JSON) to stderr")
		record      = flag.String("record", "", "write the stream of bids actually submitted as a trace-v2 file on exit")
		replay      = flag.String("replay", "", "replay a trace file instead of generating: submit its tasks in order, pacing by arrival gaps times -timescale (overrides -n, -seed, -interarrival)")
		ledgerOut   = flag.String("ledger-out", "", "write the client-side contract ledger as JSON on exit (\"-\" for stdout; empty disables)")
	)
	flag.Parse()

	lv, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridclient:", err)
		os.Exit(2)
	}
	sel, err := market.ParseSelector(*selector)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridclient:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, lv, "gridclient")
	var tracer *obs.Tracer
	if *trace {
		tracer = obs.TracerFor(logger, "gridclient")
	}
	if *metrics != "" {
		diag, err := obs.ServeDiag(*metrics, obs.DiagConfig{Logger: logger})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridclient:", err)
			os.Exit(1)
		}
		defer diag.Close()
		fmt.Printf("diagnostics on http://%s/metrics\n", diag.Addr())
	}
	// The client-side contract ledger mirrors the client's own view of
	// every placement: opened at contract award, settled when the site's
	// push or the reconcile poll delivers the outcome. A site's ledger can
	// be reconciled against this dump (see DESIGN.md §13).
	var ledger *obs.Ledger
	if *ledgerOut != "" {
		ledger = obs.NewLedger(obs.LedgerConfig{Site: "gridclient"})
	}
	lateness := obs.Default.Histogram("market_settlement_lateness",
		"Completion time minus contracted completion, in simulation units.",
		nil, "site")
	defaults := obs.Default.Counter("market_contracts_defaulted_total",
		"Contracts whose site reported them defaulted.", "role", "site")

	start := time.Now()
	var clients []*wire.SiteClient
	var mu sync.Mutex
	settledCount, defaultedCount, lostCount := 0, 0, 0
	revenue := 0.0
	expected := make(map[task.ID]float64)        // contracted completion per task
	holder := make(map[task.ID]*wire.SiteClient) // site holding each open contract
	var wg sync.WaitGroup

	// claim closes a contract exactly once: the settlement push and the
	// reconciliation poll can race to deliver the same outcome.
	claim := func(id task.ID) (float64, bool) {
		mu.Lock()
		defer mu.Unlock()
		want, ok := expected[id]
		if ok {
			delete(expected, id)
			delete(holder, id)
		}
		return want, ok
	}

	for _, addr := range strings.Split(*sites, ",") {
		c, err := wire.DialConfig(strings.TrimSpace(addr), wire.ClientConfig{RequestTimeout: *timeout, Codec: *codec})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridclient:", err)
			os.Exit(1)
		}
		c.SetOnSettled(func(e wire.Envelope) {
			want, open := claim(e.TaskID)
			if !open {
				return // already reconciled via query
			}
			mu.Lock()
			settledCount++
			revenue += e.FinalPrice
			mu.Unlock()
			ledger.Settle(uint64(e.TaskID), obs.OutcomeSettled, e.CompletedAt, e.FinalPrice)
			lateness.With(e.SiteID).Observe(e.CompletedAt - want)
			tracer.Emit(obs.TraceEvent{Stage: obs.StageSettle, Task: uint64(e.TaskID),
				Req: e.ReqID, Site: e.SiteID, T: e.CompletedAt, Value: e.FinalPrice})
			fmt.Printf("settled  task %d at %s: price %.2f\n", e.TaskID, e.SiteID, e.FinalPrice)
			wg.Done()
		})
		defer c.Close()
		clients = append(clients, c)
	}

	// reconcileOutstanding queries every open contract at its site. A dead
	// connection is redialed first — the settlement callback survives the
	// redial, and querying an open contract re-subscribes this connection to
	// its settlement push, so contracts held across a site restart settle
	// here instead of waiting forever. Contracts the site reports settled
	// are claimed as if the push had arrived; defaulted ones are logged and
	// their penalty booked; unknown ones are written off.
	reconcileOutstanding := func() {
		mu.Lock()
		open := make(map[task.ID]*wire.SiteClient, len(holder))
		for id, c := range holder {
			open[id] = c
		}
		mu.Unlock()
		for id, c := range open {
			st, err := c.Query(id)
			if err != nil {
				if rerr := c.Redial(); rerr != nil {
					logger.Warn("site unreachable during reconcile", "task", uint64(id), "addr", c.Addr(), "err", rerr.Error())
					continue
				}
				if st, err = c.Query(id); err != nil {
					logger.Warn("contract query failed after redial", "task", uint64(id), "addr", c.Addr(), "err", err.Error())
					continue
				}
			}
			switch st.State {
			case wire.ContractOpen:
				// Still running; the query re-subscribed us to the push.
			case wire.ContractSettled:
				if want, ok := claim(id); ok {
					mu.Lock()
					settledCount++
					revenue += st.FinalPrice
					mu.Unlock()
					ledger.Settle(uint64(id), obs.OutcomeSettled, st.CompletedAt, st.FinalPrice)
					lateness.With(c.SiteID()).Observe(st.CompletedAt - want)
					fmt.Printf("settled  task %d at %s: price %.2f (reconciled)\n", id, c.SiteID(), st.FinalPrice)
					wg.Done()
				}
			case wire.ContractDefaulted:
				if _, ok := claim(id); ok {
					mu.Lock()
					defaultedCount++
					revenue += st.FinalPrice
					mu.Unlock()
					ledger.Settle(uint64(id), obs.OutcomeDefaulted, st.CompletedAt, st.FinalPrice)
					defaults.With("client", c.SiteID()).Inc()
					logger.Warn("contract defaulted", "task", uint64(id), "site", c.SiteID(), "price", st.FinalPrice)
					fmt.Printf("default  task %d at %s: penalty %.2f\n", id, c.SiteID(), st.FinalPrice)
					wg.Done()
				}
			case wire.ContractUnknown:
				if _, ok := claim(id); ok {
					mu.Lock()
					lostCount++
					mu.Unlock()
					ledger.Settle(uint64(id), obs.OutcomeAbandoned, float64(time.Since(start))/float64(*scale), 0)
					logger.Warn("contract lost: site has no record of it", "task", uint64(id), "site", c.SiteID())
					wg.Done()
				}
			}
		}
	}
	neg := &wire.Negotiator{
		Sites:          clients,
		Selector:       sel,
		Retries:        *retries,
		Backoff:        *backoff,
		DeadlineBudget: *deadlineBud,
		Logger:         logger,
		Metrics:        obs.Default,
		Tracer:         tracer,
	}

	var tr *workload.Trace
	if *replay != "" {
		tr, err = workload.ReadFile(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridclient:", err)
			os.Exit(1)
		}
	} else {
		spec := workload.Default()
		spec.Jobs = *n
		spec.Seed = *seed
		spec.MeanRuntime = 20 // simulation units; 200ms of wall clock at the default scale
		spec.ValueSkew = 3
		spec.DecaySkew = 5
		tr, err = workload.Generate(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridclient:", err)
			os.Exit(1)
		}
	}
	var rec *workload.Recorder
	if *record != "" {
		rec = workload.NewRecorder(tr.Spec)
	}

	rng := rand.New(rand.NewSource(*seed))
	placed, declined := 0, 0
	var prevArrival float64
	for i, t := range tr.Tasks {
		if i > 0 {
			if *replay != "" {
				// Reproduce the trace's tempo: one simulation time unit of
				// arrival gap is -timescale of wall clock.
				time.Sleep(time.Duration((t.Arrival - prevArrival) * float64(*scale)))
			} else {
				time.Sleep(time.Duration(rng.ExpFloat64() * float64(*mean)))
			}
		}
		prevArrival = t.Arrival
		wt := cloneForWire(t)
		if rec != nil {
			// Stamp the submission instant in simulation units so the
			// recording replays at the tempo the service actually saw.
			rec.Record(wt, float64(time.Since(start))/float64(*scale))
		}
		bid := market.BidFromTask(wt)
		terms, ok, err := neg.Negotiate(bid)
		if err != nil {
			// Every site unreachable: report and keep trying later bids
			// rather than abandoning the run — sites may come back.
			declined++
			fmt.Fprintf(os.Stderr, "gridclient: task %d: %v\n", bid.TaskID, err)
			continue
		}
		if !ok {
			declined++
			fmt.Printf("declined task %d (no site accepted)\n", bid.TaskID)
			continue
		}
		placed++
		mu.Lock()
		expected[terms.TaskID] = terms.ExpectedCompletion
		for _, c := range clients {
			if c.SiteID() == terms.SiteID {
				holder[terms.TaskID] = c
				break
			}
		}
		mu.Unlock()
		ledger.Open(obs.LedgerEntry{
			Task: uint64(terms.TaskID), Site: terms.SiteID,
			Cohort: wt.Cohort, Client: wt.Client,
			BidValue: wt.Value, QuotedPrice: terms.ExpectedPrice,
			ExpectedCompletion: terms.ExpectedCompletion,
			AwardedAt:          float64(time.Since(start)) / float64(*scale),
		})
		wg.Add(1)
		fmt.Printf("contract task %d -> %s: expected completion %.1f, price %.2f\n",
			bid.TaskID, terms.SiteID, terms.ExpectedCompletion, terms.ExpectedPrice)
	}

	// Wait for outstanding settlements, bounded by the worst-case drain
	// time, reconciling periodically so contracts stranded by a site
	// restart are re-subscribed or written off instead of waited on
	// forever.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	deadline := time.After(time.Duration(float64(*scale) * 20 * float64(len(tr.Tasks)) * 5))
	var tick <-chan time.Time
	if *reconcile > 0 {
		ticker := time.NewTicker(*reconcile)
		defer ticker.Stop()
		tick = ticker.C
	}
	for draining := true; draining; {
		select {
		case <-done:
			draining = false
		case <-tick:
			reconcileOutstanding()
		case <-deadline:
			reconcileOutstanding()
			mu.Lock()
			stranded := len(expected)
			mu.Unlock()
			if stranded > 0 {
				fmt.Printf("timed out waiting for %d settlements\n", stranded)
			}
			draining = false
		}
	}

	if rec != nil {
		if err := rec.WriteFile(*record); err != nil {
			fmt.Fprintln(os.Stderr, "gridclient: record:", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d submissions to %s\n", rec.Len(), *record)
	}

	if ledger != nil {
		w := os.Stdout
		if *ledgerOut != "-" {
			f, err := os.Create(*ledgerOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gridclient: ledger:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := ledger.WriteJSON(w); err != nil {
			fmt.Fprintln(os.Stderr, "gridclient: ledger:", err)
			os.Exit(1)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("\nplaced %d, declined %d, settled %d, defaulted %d, lost %d, revenue %.2f\n",
		placed, declined, settledCount, defaultedCount, lostCount, revenue)
}

// cloneForWire strips the generated arrival stamp: in the live protocol a
// bid's release time is its submission instant.
func cloneForWire(t *task.Task) *task.Task {
	c := t.Clone()
	c.Arrival = 0
	return c
}
