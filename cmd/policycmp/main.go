// Command policycmp compares scheduling policies head-to-head on a single
// workload specification: total yield, yield rate, delays, preemptions, and
// improvement over a chosen baseline, averaged over replicated traces.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/site"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func main() {
	var (
		jobs      = flag.Int("jobs", 2000, "jobs per trace")
		seeds     = flag.Int("seeds", 3, "trace replications")
		procs     = flag.Int("procs", 16, "processors at the site")
		load      = flag.Float64("load", 1, "load factor")
		vskew     = flag.Float64("vskew", 2, "value skew ratio")
		dskew     = flag.Float64("dskew", 1, "decay skew ratio")
		zcf       = flag.Float64("zcf", 3, "zero-cross factor (mean runtimes of delay to zero value)")
		bound     = flag.Float64("bound", -1, "penalty bound (-1 = unbounded)")
		preempt   = flag.Bool("preempt", false, "enable preemption")
		restart   = flag.Bool("restart", false, "preemption loses progress")
		noshield  = flag.Bool("noshield", false, "rank running tasks at full restart cost for preemption")
		millen    = flag.Bool("millennium", false, "use the Millennium mix (normal dists, 16-job batches, bound 0)")
		runtimeCV = flag.Float64("runtimecv", 0, "override runtime CV (>0)")
		valueCV   = flag.Float64("valuecv", 0, "override within-class value CV (>0)")
		discount  = flag.Float64("discount", 0.01, "discount rate for PV and FirstReward")
		alpha     = flag.Float64("alpha", 0.3, "alpha for FirstReward")
	)
	flag.Parse()

	spec := workload.Default()
	if *millen {
		spec = workload.Millennium()
	}
	spec.Jobs = *jobs
	spec.Processors = *procs
	spec.Load = *load
	spec.ValueSkew = *vskew
	spec.DecaySkew = *dskew
	spec.ZeroCrossFactor = *zcf
	if *bound >= 0 {
		spec.Bound = *bound
	}
	if *runtimeCV > 0 {
		spec.RuntimeCV = *runtimeCV
	}
	if *valueCV > 0 {
		spec.ValueCV = *valueCV
	}

	policies := []core.Policy{
		core.FCFS{},
		core.SRPT{},
		core.SWPT{},
		core.FirstPrice{},
		core.PresentValue{DiscountRate: *discount},
		core.FirstReward{Alpha: *alpha, DiscountRate: *discount},
	}

	type row struct {
		name                string
		yield, delay, preem stats.Summary
	}
	rows := make([]row, 0, len(policies))
	for _, p := range policies {
		results := sweep.Replicate(1, *seeds, 0, func(seed int64) [3]float64 {
			sp := spec
			sp.Seed = seed
			tr, err := workload.Generate(sp)
			if err != nil {
				fmt.Fprintln(os.Stderr, "policycmp:", err)
				os.Exit(1)
			}
			sc := site.Config{
				Processors:        sp.Processors,
				Policy:            p,
				Preemptive:        *preempt,
				PreemptionRestart: *restart,
			}
			if *noshield {
				sc.PreemptRanking = site.RestartCost
			}
			m := site.RunTrace(tr.Clone(), sc)
			return [3]float64{m.TotalYield, m.MeanDelay(), float64(m.Preemptions)}
		})
		var y, d, pr []float64
		for _, r := range results {
			y = append(y, r[0])
			d = append(d, r[1])
			pr = append(pr, r[2])
		}
		rows = append(rows, row{p.Name(), stats.Summarize(y), stats.Summarize(d), stats.Summarize(pr)})
	}

	base := rows[3].yield.Mean // FirstPrice
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tyield\tvs FirstPrice (%)\tmean delay\tpreemptions")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.0f\t%+.2f\t%.1f\t%.0f\n",
			r.name, r.yield.Mean, stats.Improvement(r.yield.Mean, base), r.delay.Mean, r.preem.Mean)
	}
	w.Flush()
}
