// Command policycmp compares scheduling policies head-to-head on a single
// workload specification: total yield, yield rate, delays, preemptions, and
// improvement over a chosen baseline, averaged over replicated traces.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/site"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// defaultPolicies is the paper's head-to-head lineup, as policy specs.
// Individual runs override it with -policies (space-separated specs;
// commas belong to the spec grammar itself).
const defaultPolicies = "fcfs srpt swpt firstprice pv:rate=0.01 firstreward:alpha=0.3,rate=0.01"

func main() {
	var (
		jobs      = flag.Int("jobs", 2000, "jobs per trace")
		seeds     = flag.Int("seeds", 3, "trace replications")
		procs     = flag.Int("procs", 16, "processors at the site")
		load      = flag.Float64("load", 1, "load factor")
		vskew     = flag.Float64("vskew", 2, "value skew ratio")
		dskew     = flag.Float64("dskew", 1, "decay skew ratio")
		zcf       = flag.Float64("zcf", 3, "zero-cross factor (mean runtimes of delay to zero value)")
		bound     = flag.Float64("bound", -1, "penalty bound (-1 = unbounded)")
		preempt   = flag.Bool("preempt", false, "enable preemption")
		restart   = flag.Bool("restart", false, "preemption loses progress")
		noshield  = flag.Bool("noshield", false, "rank running tasks at full restart cost for preemption")
		millen    = flag.Bool("millennium", false, "use the Millennium mix (normal dists, 16-job batches, bound 0)")
		runtimeCV = flag.Float64("runtimecv", 0, "override runtime CV (>0)")
		valueCV   = flag.Float64("valuecv", 0, "override within-class value CV (>0)")
		specs     = flag.String("policies", defaultPolicies, "space-separated policy specs to compare (see core.ParseSpec)")
		baseline  = flag.String("baseline", "firstprice", "policy spec the improvement column is measured against")
	)
	flag.Parse()

	spec := workload.Default()
	if *millen {
		spec = workload.Millennium()
	}
	spec.Jobs = *jobs
	spec.Processors = *procs
	spec.Load = *load
	spec.ValueSkew = *vskew
	spec.DecaySkew = *dskew
	spec.ZeroCrossFactor = *zcf
	if *bound >= 0 {
		spec.Bound = *bound
	}
	if *runtimeCV > 0 {
		spec.RuntimeCV = *runtimeCV
	}
	if *valueCV > 0 {
		spec.ValueCV = *valueCV
	}

	var policies []core.Policy
	for _, s := range strings.Fields(*specs) {
		p, err := core.ParseSpec(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "policycmp:", err)
			os.Exit(2)
		}
		policies = append(policies, p)
	}
	if len(policies) == 0 {
		fmt.Fprintln(os.Stderr, "policycmp: -policies is empty")
		os.Exit(2)
	}
	basePolicy, err := core.ParseSpec(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "policycmp:", err)
		os.Exit(2)
	}

	type row struct {
		name                string
		yield, delay, preem stats.Summary
	}
	rows := make([]row, 0, len(policies))
	for _, p := range policies {
		results := sweep.Replicate(1, *seeds, 0, func(seed int64) [3]float64 {
			sp := spec
			sp.Seed = seed
			tr, err := workload.Generate(sp)
			if err != nil {
				fmt.Fprintln(os.Stderr, "policycmp:", err)
				os.Exit(1)
			}
			sc := site.Config{
				Processors:        sp.Processors,
				Policy:            p,
				Preemptive:        *preempt,
				PreemptionRestart: *restart,
			}
			if *noshield {
				sc.PreemptRanking = site.RestartCost
			}
			m := site.RunTrace(tr.Clone(), sc)
			return [3]float64{m.TotalYield, m.MeanDelay(), float64(m.Preemptions)}
		})
		var y, d, pr []float64
		for _, r := range results {
			y = append(y, r[0])
			d = append(d, r[1])
			pr = append(pr, r[2])
		}
		rows = append(rows, row{p.Name(), stats.Summarize(y), stats.Summarize(d), stats.Summarize(pr)})
	}

	base := rows[0].yield.Mean
	found := false
	for _, r := range rows {
		if r.name == basePolicy.Name() {
			base, found = r.yield.Mean, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "policycmp: baseline %s is not among -policies; using %s\n",
			basePolicy.Name(), rows[0].name)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "policy\tyield\tvs %s (%%)\tmean delay\tpreemptions\n", basePolicy.Name())
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.0f\t%+.2f\t%.1f\t%.0f\n",
			r.name, r.yield.Mean, stats.Improvement(r.yield.Mean, base), r.delay.Mean, r.preem.Mean)
	}
	w.Flush()
}
