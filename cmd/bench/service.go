package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/task"
	"repro/internal/wire"
)

// ServiceResult is the saturation-benchmark report schema
// (results/BENCH_service.json in CI): a real site server under M
// concurrent clients, measured in four phases — the pre-PR single-lock
// request path ("locked") and the snapshot + group-commit path
// ("concurrent"), each at fsync=always and fsync=interval.
type ServiceResult struct {
	GeneratedUnix int64   `json:"generated_unix"`
	GoVersion     string  `json:"go_version"`
	GoMaxProcs    int     `json:"go_max_procs"`
	Clients       int     `json:"clients"`
	DurationSec   float64 `json:"duration_sec"`

	Phases []ServicePhase `json:"phases"`

	// Headline like-for-like ratios at fsync=always: the concurrent path's
	// throughput over the locked path's, same workload, same process.
	QuoteSpeedupAlways float64 `json:"quote_speedup_always"`
	AwardSpeedupAlways float64 `json:"award_speedup_always"`
}

// ServicePhase is one (mode, fsync, mix) saturation measurement.
type ServicePhase struct {
	Mode  string `json:"mode"`  // "locked" or "concurrent"
	Fsync string `json:"fsync"` // "always" or "interval"
	Mix   string `json:"mix"`   // "quote" (3/4 quoters, 1/4 awarders) or "award" (all awarders)

	QuotesPerSec   float64 `json:"quotes_per_sec"`
	AwardsPerSec   float64 `json:"awards_per_sec"`
	BidP50Micros   float64 `json:"bid_p50_us"`
	BidP99Micros   float64 `json:"bid_p99_us"`
	AwardP99Micros float64 `json:"award_p99_us"`

	// Group-commit accounting (zero in locked mode): fsync rounds run and
	// journal records they made durable — records/round is the batching win.
	BatchRounds  float64 `json:"batch_rounds"`
	BatchRecords float64 `json:"batch_records"`
}

// serviceOpts carries the -service flags.
type serviceOpts struct {
	clients     int
	duration    time.Duration
	profileDir  string
	phaseFilter string // "mode/fsync/mix" substring match; empty runs all
	obsDir      string // write per-phase flight dumps (timeseries + ledger) here
	shards      int    // task-book shards on the benched server (0/1 = single book)
	codec       string // codec the bench clients request ("" = plain v1 JSON)
}

// runService measures eight phases: {locked, concurrent} × {always,
// interval} × {quote mix, award mix}. Each phase boots a fresh server
// (fresh journal directory, fresh metrics registry) and drives it with
// opts.clients concurrent closed-loop clients.
//
// The quote mix is the quotes/sec headline: a quarter of the clients are
// awarders (bid, then immediately award the accepted contract) keeping
// the journal, dispatch, and settlement pipeline continuously hot, and
// the rest are quoters (pure bid traffic) measuring the quote path under
// that durability load. On the locked path every quote serializes behind
// the awarders' in-lock fsyncs; on the concurrent path quotes rank
// against the published snapshot and never touch the lock, which is the
// contention this benchmark exists to show.
//
// The award mix is the awards/sec headline: every client sends awards
// back-to-back (no per-award proposal — the site re-quotes
// authoritatively on award, which is also what makes awards idempotent),
// so concurrent awards pile onto the journal at once. On the locked path
// each award pays its own in-lock fsync; on the concurrent path the
// waiters share group-commit rounds, and records-per-round is reported
// alongside the throughput.
func runService(opts serviceOpts) (ServiceResult, error) {
	res := ServiceResult{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Clients:       opts.clients,
		DurationSec:   opts.duration.Seconds(),
	}
	if opts.profileDir != "" {
		// Mutex/block profiles answer "where did the concurrent path still
		// serialize"; the CPU profile answers "what does each op cost".
		// CI uploads all three as artifacts.
		runtime.SetMutexProfileFraction(20)
		runtime.SetBlockProfileRate(10_000) // sample blocking events >= 10µs
		if err := os.MkdirAll(opts.profileDir, 0o755); err != nil {
			return res, err
		}
		f, err := os.Create(filepath.Join(opts.profileDir, "cpu.pprof"))
		if err != nil {
			return res, err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return res, err
		}
		defer pprof.StopCPUProfile()
	}
	phases := []struct {
		mode  string
		fsync durable.FsyncPolicy
		name  string
		mix   string
	}{
		{"locked", durable.FsyncAlways, "always", "quote"},
		{"concurrent", durable.FsyncAlways, "always", "quote"},
		{"locked", durable.FsyncAlways, "always", "award"},
		{"concurrent", durable.FsyncAlways, "always", "award"},
		{"locked", durable.FsyncInterval, "interval", "quote"},
		{"concurrent", durable.FsyncInterval, "interval", "quote"},
		{"locked", durable.FsyncInterval, "interval", "award"},
		{"concurrent", durable.FsyncInterval, "interval", "award"},
	}
	selected := phases[:0:0]
	for _, ph := range phases {
		if opts.phaseFilter != "" &&
			!strings.Contains(ph.mode+"/"+ph.name+"/"+ph.mix, opts.phaseFilter) {
			continue
		}
		selected = append(selected, ph)
	}
	// Multi-phase runs execute each phase in a fresh child process:
	// phases measurably interfere in-process (GC pacing, runtime timer
	// and netpoller state left by the previous phase's teardown skews the
	// next phase's equilibrium by 2-3x). Single-phase runs — including
	// the children themselves, whose exact filter selects one phase — and
	// profiled runs (the profile must cover every phase) stay in-process.
	isolate := len(selected) > 1 && opts.profileDir == ""
	for _, ph := range selected {
		var (
			p   ServicePhase
			err error
		)
		if isolate {
			p, err = runPhaseIsolated(ph.mode, ph.name, ph.mix, opts)
		} else {
			p, err = runServicePhase(ph.mode, ph.name, ph.fsync, ph.mix, opts)
		}
		if err != nil {
			return res, fmt.Errorf("phase %s/%s/%s: %w", ph.mode, ph.name, ph.mix, err)
		}
		res.Phases = append(res.Phases, p)
		if !isolate {
			fmt.Fprintf(os.Stderr, "bench: service %s fsync=%s mix=%s: %.0f quotes/s, %.0f awards/s, bid p99 %.0fµs\n",
				p.Mode, p.Fsync, p.Mix, p.QuotesPerSec, p.AwardsPerSec, p.BidP99Micros)
		}
	}
	if locked, ok := findPhase(res.Phases, "locked", "always", "quote"); ok {
		if conc, ok := findPhase(res.Phases, "concurrent", "always", "quote"); ok {
			res.QuoteSpeedupAlways = conc.QuotesPerSec / locked.QuotesPerSec
		}
	}
	if locked, ok := findPhase(res.Phases, "locked", "always", "award"); ok {
		if conc, ok := findPhase(res.Phases, "concurrent", "always", "award"); ok {
			res.AwardSpeedupAlways = conc.AwardsPerSec / locked.AwardsPerSec
		}
	}
	if opts.profileDir != "" {
		if err := writeProfiles(opts.profileDir); err != nil {
			return res, err
		}
	}
	return res, nil
}

func findPhase(phases []ServicePhase, mode, fsync, mix string) (ServicePhase, bool) {
	for _, p := range phases {
		if p.Mode == mode && p.Fsync == fsync && p.Mix == mix {
			return p, true
		}
	}
	return ServicePhase{}, false
}

func writeProfiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range []string{"mutex", "block"} {
		prof := pprof.Lookup(name)
		if prof == nil {
			continue
		}
		f, err := os.Create(filepath.Join(dir, name+".pprof"))
		if err != nil {
			return err
		}
		err = prof.WriteTo(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// runPhaseIsolated re-executes this binary with an exact phase filter and
// reads the single-phase report back, so each measurement starts from a
// cold runtime. The child inherits stderr (its own summary line serves as
// the progress log) and writes its JSON report to a temp file.
func runPhaseIsolated(mode, fsyncName, mix string, opts serviceOpts) (ServicePhase, error) {
	exe, err := os.Executable()
	if err != nil {
		return ServicePhase{}, err
	}
	tmp, err := os.CreateTemp("", "bench-phase-*.json")
	if err != nil {
		return ServicePhase{}, err
	}
	tmp.Close()
	defer os.Remove(tmp.Name())
	want := mode + "/" + fsyncName + "/" + mix
	args := []string{"-service",
		"-clients", strconv.Itoa(opts.clients),
		"-duration", opts.duration.String(),
		"-phase-filter", want,
		"-out", tmp.Name()}
	if opts.obsDir != "" {
		args = append(args, "-obs-dir", opts.obsDir)
	}
	if opts.shards > 1 {
		args = append(args, "-shards", strconv.Itoa(opts.shards))
	}
	if opts.codec != "" {
		args = append(args, "-codec", opts.codec)
	}
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return ServicePhase{}, fmt.Errorf("child bench: %w", err)
	}
	raw, err := os.ReadFile(tmp.Name())
	if err != nil {
		return ServicePhase{}, err
	}
	var child ServiceResult
	if err := json.Unmarshal(raw, &child); err != nil {
		return ServicePhase{}, fmt.Errorf("child report: %w", err)
	}
	if p, ok := findPhase(child.Phases, mode, fsyncName, mix); ok {
		return p, nil
	}
	return ServicePhase{}, fmt.Errorf("child report missing phase %s", want)
}

func runServicePhase(mode, fsyncName string, fsync durable.FsyncPolicy, mix string, opts serviceOpts) (ServicePhase, error) {
	dir, err := os.MkdirTemp("", "bench-service-*")
	if err != nil {
		return ServicePhase{}, err
	}
	defer os.RemoveAll(dir)

	reg := obs.NewRegistry()
	siteID := "bench"
	// The ledger always runs: the CI floors gate the service throughput
	// with economic bookkeeping enabled, not an instrumentation-free build.
	ledger := obs.NewLedger(obs.LedgerConfig{Site: siteID, Policy: "firstreward", Registry: reg})
	var flight *obs.Flight
	if opts.obsDir != "" {
		flight = obs.NewFlight(obs.FlightConfig{Registry: reg, Interval: 250 * time.Millisecond})
		defer flight.Stop()
	}
	srv, err := wire.NewServer("127.0.0.1:0", wire.ServerConfig{
		SiteID:     siteID,
		Processors: 8,
		Policy:     core.FirstReward{Alpha: 0.3, DiscountRate: 0.01},
		// 20µs per unit: awarded tasks (runtime 1-4 units) complete in tens
		// of microseconds, so contracts churn through book, journal, and
		// settlement at the same rate they are written.
		TimeScale:    20 * time.Microsecond,
		Metrics:      reg,
		Ledger:       ledger,
		DataDir:      dir,
		Fsync:        fsync,
		FsyncEvery:   5 * time.Millisecond,
		LegacyLocked: mode == "locked",
		Shards:       opts.shards,
	})
	if err != nil {
		return ServicePhase{}, err
	}
	defer srv.Close()

	type clientStats struct {
		quotes, awards int
		bidLat         []float64 // seconds
		awardLat       []float64
		err            error
	}
	stats := make([]clientStats, opts.clients)
	var (
		startGate = make(chan struct{})
		stop      = make(chan struct{})
		wg        sync.WaitGroup
	)
	for w := 0; w < opts.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			c, err := wire.DialConfig(srv.Addr(), wire.ClientConfig{Codec: opts.codec})
			if err != nil {
				st.err = err
				return
			}
			defer c.Close()
			c.SetOnSettled(func(wire.Envelope) {})
			rng := rand.New(rand.NewSource(int64(w) + 1))
			awarder := mix == "award" || w < (opts.clients+3)/4
			<-startGate
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := task.ID(w*10_000_000 + i + 1)
				rt := 1 + rng.Float64()*3
				bid := market.Bid{TaskID: id, Runtime: rt, Value: rt * 10,
					Decay: 0.01, Bound: math.Inf(1)}
				sb := market.ServerBid{}
				ok := true
				if mix == "quote" {
					began := time.Now()
					var err error
					sb, ok, err = c.Propose(bid)
					st.bidLat = append(st.bidLat, time.Since(began).Seconds())
					if err != nil {
						st.err = err
						return
					}
					st.quotes++
				}
				if !awarder || !ok {
					continue
				}
				began := time.Now()
				_, ok, err := c.Award(bid, sb)
				st.awardLat = append(st.awardLat, time.Since(began).Seconds())
				if err != nil {
					st.err = err
					return
				}
				if ok {
					st.awards++
				}
			}
		}(w)
	}
	close(startGate)
	began := time.Now()
	time.Sleep(opts.duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(began).Seconds()

	var (
		quotes, awards int
		bidLat         []float64
		awardLat       []float64
	)
	for i := range stats {
		if stats[i].err != nil {
			return ServicePhase{}, stats[i].err
		}
		quotes += stats[i].quotes
		awards += stats[i].awards
		bidLat = append(bidLat, stats[i].bidLat...)
		awardLat = append(awardLat, stats[i].awardLat...)
	}
	p := ServicePhase{
		Mode:           mode,
		Fsync:          fsyncName,
		Mix:            mix,
		QuotesPerSec:   float64(quotes) / elapsed,
		AwardsPerSec:   float64(awards) / elapsed,
		BidP50Micros:   percentile(bidLat, 0.50) * 1e6,
		BidP99Micros:   percentile(bidLat, 0.99) * 1e6,
		AwardP99Micros: percentile(awardLat, 0.99) * 1e6,
	}
	// Re-binding the same family+labels yields the server's own counters.
	p.BatchRounds = reg.Counter("site_journal_batch_syncs_total", "", "site").With(siteID).Value()
	p.BatchRecords = reg.Counter("site_journal_batch_records_total", "", "site").With(siteID).Value()
	if flight != nil {
		if err := os.MkdirAll(opts.obsDir, 0o755); err != nil {
			return ServicePhase{}, err
		}
		name := fmt.Sprintf("flight-%s-%s-%s.json", mode, fsyncName, mix)
		if err := obs.WriteFlightDump(filepath.Join(opts.obsDir, name), flight, ledger); err != nil {
			return ServicePhase{}, err
		}
	}
	return p, nil
}

func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// checkService enforces the saturation regression gates: per-phase
// throughput floors from the committed baseline (concurrent phases only —
// the locked phases exist as the speedup denominator, not a product
// surface), plus optional minimum speedups.
func checkService(res ServiceResult, baselinePath string, tolerance, minQuoteSpeedup, minAwardSpeedup float64) error {
	if minQuoteSpeedup > 0 && res.QuoteSpeedupAlways < minQuoteSpeedup {
		return fmt.Errorf("quote speedup %.2fx at fsync=always is below the required %.1fx",
			res.QuoteSpeedupAlways, minQuoteSpeedup)
	}
	if minAwardSpeedup > 0 && res.AwardSpeedupAlways < minAwardSpeedup {
		return fmt.Errorf("award speedup %.2fx at fsync=always is below the required %.1fx",
			res.AwardSpeedupAlways, minAwardSpeedup)
	}
	if baselinePath == "" {
		return nil
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base ServiceResult
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	for _, b := range base.Phases {
		if b.Mode != "concurrent" {
			continue
		}
		cur, ok := findPhase(res.Phases, b.Mode, b.Fsync, b.Mix)
		if !ok {
			continue
		}
		// Each mix gates the headline it exists to measure; the other rate
		// is incidental load and too noisy to be a floor.
		switch b.Mix {
		case "quote":
			if cur.QuotesPerSec < b.QuotesPerSec*(1-tolerance) {
				return fmt.Errorf("quotes/sec at %s/fsync=%s regressed: %.0f vs baseline floor %.0f (tolerance %.0f%%)",
					b.Mode, b.Fsync, cur.QuotesPerSec, b.QuotesPerSec, tolerance*100)
			}
		case "award":
			if cur.AwardsPerSec < b.AwardsPerSec*(1-tolerance) {
				return fmt.Errorf("awards/sec at %s/fsync=%s regressed: %.0f vs baseline floor %.0f (tolerance %.0f%%)",
					b.Mode, b.Fsync, cur.AwardsPerSec, b.AwardsPerSec, tolerance*100)
			}
		}
	}
	return nil
}
