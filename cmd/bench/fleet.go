package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/task"
	"repro/internal/wire"
	"repro/internal/workload"
)

// FleetResult is the digest-routing benchmark report schema
// (results/BENCH_fleet.json in CI): a 50-site fleet behind one broker,
// driven closed-loop by 1k clients submitting the bursty cohort mix, once
// with the O(sites) full quote fan-out and once with digest-driven top-k
// routing. The headline is SpeedupP99 — fan-out p99 quote latency over
// top-k p99 — and YieldRatio, the aggregate realized yield top-k keeps
// relative to quoting every site. Routing is only a win if it buys tail
// latency without giving the economics away.
type FleetResult struct {
	GeneratedUnix int64  `json:"generated_unix"`
	GoVersion     string `json:"go_version"`
	GoMaxProcs    int    `json:"go_max_procs"`
	NumCPU        int    `json:"num_cpu"`
	Sites         int    `json:"sites"`
	Clients       int    `json:"clients"`
	Bids          int    `json:"bids"`
	TopK          int    `json:"top_k"`

	Phases []FleetPhase `json:"phases"`

	// SpeedupP99 is fanout quote p99 over topk quote p99; YieldRatio is
	// topk realized yield over fanout realized yield. Both measured in
	// this run from the same seeded trace. The gates are meaningful only
	// when NumCPU >= 4: on smaller machines the phases still run as a
	// smoke test but SkipReason records that the gates were waived.
	SpeedupP99    float64 `json:"speedup_p99"`
	YieldRatio    float64 `json:"yield_ratio"`
	GatesEnforced bool    `json:"gates_enforced"`
	SkipReason    string  `json:"skip_reason,omitempty"`
}

// FleetPhase is one routing mode's measurement over the shared trace.
type FleetPhase struct {
	Name string `json:"name"` // "fanout" or "topk"

	BidsPerSec     float64 `json:"bids_per_sec"`
	QuoteP50Micros float64 `json:"quote_p50_us"`
	QuoteP99Micros float64 `json:"quote_p99_us"`

	Awarded       int     `json:"awarded"`
	Shed          int     `json:"shed"`
	Refused       int     `json:"refused"`
	Settled       int     `json:"settled"`
	Defaulted     int     `json:"defaulted"`
	RealizedYield float64 `json:"realized_yield"`
}

// fleetOpts carries the -fleet flags.
type fleetOpts struct {
	sites   int
	clients int
	bids    int
	topk    int
	rate    float64 // mean offered bids/sec (bursts preserved around it)
}

// fleetTrace generates the shared bursty-cohort trace both phases replay:
// the workload engine's interactive/batch mix on high-CV arrivals under a
// two-wave rate envelope. A dispatcher paces submissions on the trace's
// arrival clock — identically in both phases, so realized yield compares
// routing quality rather than rewarding whichever mode quotes slower —
// and the 1k clients service the paced queue closed-loop.
func fleetTrace(opts fleetOpts) (*workload.Trace, error) {
	spec := workload.Default()
	spec.Jobs = opts.bids
	spec.Seed = 7
	spec.Processors = opts.sites * 4
	spec.Load = 1.2
	spec.Cohorts = workloadCohorts(true)
	spec.Envelope = workload.Envelope{
		{Amplitude: 0.4, Period: 300},
		{Amplitude: 0.2, Period: 80},
	}
	return workload.Generate(spec)
}

// runFleet measures both routing modes against fresh fleets.
func runFleet(opts fleetOpts) (FleetResult, error) {
	res := FleetResult{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Sites:         opts.sites,
		Clients:       opts.clients,
		Bids:          opts.bids,
		TopK:          opts.topk,
	}
	tr, err := fleetTrace(opts)
	if err != nil {
		return res, err
	}
	for _, mode := range []string{wire.RouteFanout, wire.RouteTopK} {
		p, err := runFleetPhase(mode, tr, opts)
		if err != nil {
			return res, fmt.Errorf("fleet phase %s: %w", mode, err)
		}
		res.Phases = append(res.Phases, p)
		fmt.Fprintf(os.Stderr, "bench: fleet %s: %.0f bids/s, quote p99 %.0fµs, awarded %d, yield %.1f\n",
			p.Name, p.BidsPerSec, p.QuoteP99Micros, p.Awarded, p.RealizedYield)
	}
	if fan, ok := findFleetPhase(res.Phases, wire.RouteFanout); ok {
		if top, ok := findFleetPhase(res.Phases, wire.RouteTopK); ok {
			if top.QuoteP99Micros > 0 {
				res.SpeedupP99 = fan.QuoteP99Micros / top.QuoteP99Micros
			}
			if fan.RealizedYield > 0 {
				res.YieldRatio = top.RealizedYield / fan.RealizedYield
			}
		}
	}
	return res, nil
}

func findFleetPhase(phases []FleetPhase, name string) (FleetPhase, bool) {
	for _, p := range phases {
		if p.Name == name {
			return p, true
		}
	}
	return FleetPhase{}, false
}

// runFleetPhase stands up a fresh fleet — opts.sites real site servers
// behind one broker in the given routing mode — and drives the trace
// through opts.clients closed-loop clients. Quote latency is the
// ProposeDetail round trip as the client sees it; realized yield is the
// sum of final settlement prices (penalties included) once every awarded
// contract resolves.
func runFleetPhase(mode string, tr *workload.Trace, opts fleetOpts) (FleetPhase, error) {
	var addrs []string
	var sites []*wire.Server
	defer func() {
		for _, s := range sites {
			s.Close()
		}
	}()
	for i := 0; i < opts.sites; i++ {
		srv, err := wire.NewServer("127.0.0.1:0", wire.ServerConfig{
			SiteID:     fmt.Sprintf("site-%02d", i),
			Processors: 4,
			MaxPending: 32,
			Policy:     core.FirstReward{Alpha: 0.3, DiscountRate: 0.01},
			// 1ms per simulation unit keeps decay losses a routing signal:
			// at finer scales, scheduler jitter on a busy runner converts to
			// tens of simulation units of decay and drowns the comparison.
			TimeScale: time.Millisecond,
		})
		if err != nil {
			return FleetPhase{}, err
		}
		sites = append(sites, srv)
		addrs = append(addrs, srv.Addr())
	}
	broker, err := wire.NewBrokerServer("127.0.0.1:0", wire.BrokerConfig{
		SiteAddrs:      addrs,
		Route:          mode,
		TopK:           opts.topk,
		DigestInterval: 25 * time.Millisecond,
		Metrics:        obs.NewRegistry(),
	})
	if err != nil {
		return FleetPhase{}, err
	}
	defer broker.Close()
	// Let the digest table fill (and the fan-out phase's lanes warm)
	// before measuring, so neither mode pays startup costs in its tail.
	time.Sleep(200 * time.Millisecond)

	type outcome struct {
		awarded bool
		lat     float64 // propose round trip, seconds
	}
	var (
		work     = make(chan *task.Task, len(tr.Tasks))
		mu       sync.Mutex
		outcomes []outcome
		openIDs  []task.ID
		shed     int
		refused  int
		settled  int
		yield    float64
		resolved = map[task.ID]bool{}
		firstErr error
		wg       sync.WaitGroup
	)

	clients := make([]*wire.SiteClient, 0, opts.clients)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	var dialMu sync.Mutex
	var dialWG sync.WaitGroup
	for w := 0; w < opts.clients; w++ {
		dialWG.Add(1)
		go func() {
			defer dialWG.Done()
			c, err := wire.Dial(broker.Addr())
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			c.SetOnSettled(func(e wire.Envelope) {
				mu.Lock()
				if !resolved[e.TaskID] {
					resolved[e.TaskID] = true
					settled++
					yield += e.FinalPrice
				}
				mu.Unlock()
			})
			dialMu.Lock()
			clients = append(clients, c)
			dialMu.Unlock()
		}()
	}
	dialWG.Wait()
	if firstErr != nil {
		return FleetPhase{}, firstErr
	}

	// Wall-clock per simulation unit, chosen so the run's mean submission
	// rate hits opts.rate with the trace's relative gaps — the bursts —
	// preserved (the same scaling the -workload bench uses).
	first, last := tr.Span()
	span := last - first
	if span <= 0 {
		return FleetPhase{}, fmt.Errorf("degenerate trace span %.3f", span)
	}
	meanGap := span / float64(len(tr.Tasks)-1)
	wallPerUnit := (float64(time.Second) / opts.rate) / meanGap

	began := time.Now()
	for _, c := range clients {
		wg.Add(1)
		go func(c *wire.SiteClient) {
			defer wg.Done()
			for t := range work {
				bid := market.BidFromTask(t)
				bid.Arrival = 0
				start := time.Now()
				sb, ok, reason, err := c.ProposeDetail(bid)
				lat := time.Since(start).Seconds()
				o := outcome{lat: lat}
				var opened task.ID
				if err != nil {
					mu.Lock()
					refused++
					outcomes = append(outcomes, o)
					mu.Unlock()
					continue
				}
				if !ok {
					mu.Lock()
					if wire.IsShedReason(reason) {
						shed++
					} else {
						refused++
					}
					outcomes = append(outcomes, o)
					mu.Unlock()
					continue
				}
				if _, ok2, areason, err := c.AwardDetail(bid, sb); err != nil {
					mu.Lock()
					refused++
					mu.Unlock()
				} else if !ok2 {
					mu.Lock()
					if wire.IsShedReason(areason) {
						shed++
					} else {
						refused++
					}
					mu.Unlock()
				} else {
					o.awarded = true
					opened = t.ID
				}
				mu.Lock()
				outcomes = append(outcomes, o)
				if opened != 0 {
					openIDs = append(openIDs, opened)
				}
				mu.Unlock()
			}
		}(c)
	}
	for i, t := range tr.Tasks {
		target := time.Duration((t.Arrival - first) * wallPerUnit)
		if sleep := target - time.Since(began); sleep > 0 {
			time.Sleep(sleep)
		}
		work <- tr.Tasks[i]
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(began).Seconds()

	// Drain: every awarded contract must resolve (settle or default)
	// before yield is final. Settlement pushes cover most; Query sweeps
	// the stragglers.
	deadline := time.Now().Add(60 * time.Second)
	defaulted := 0
	for time.Now().Before(deadline) {
		pending := false
		for i, id := range openIDs {
			mu.Lock()
			done := resolved[id]
			mu.Unlock()
			if done {
				continue
			}
			st, err := clients[i%len(clients)].Query(id)
			if err != nil {
				pending = true
				continue
			}
			switch st.State {
			case wire.ContractSettled:
				mu.Lock()
				if !resolved[id] {
					resolved[id] = true
					settled++
					yield += st.FinalPrice
				}
				mu.Unlock()
			case wire.ContractDefaulted:
				mu.Lock()
				if !resolved[id] {
					resolved[id] = true
					defaulted++
					yield += st.FinalPrice
				}
				mu.Unlock()
			default:
				pending = true
			}
		}
		if !pending {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	var lats []float64
	awarded := 0
	for _, o := range outcomes {
		lats = append(lats, o.lat)
		if o.awarded {
			awarded++
		}
	}
	return FleetPhase{
		Name:           mode,
		BidsPerSec:     float64(len(outcomes)) / elapsed,
		QuoteP50Micros: percentile(lats, 0.50) * 1e6,
		QuoteP99Micros: percentile(lats, 0.99) * 1e6,
		Awarded:        awarded,
		Shed:           shed,
		Refused:        refused,
		Settled:        settled,
		Defaulted:      defaulted,
		RealizedYield:  yield,
	}, nil
}

// checkFleet enforces the routing gates. On a machine with at least 4
// CPUs: the measured top-k speedup must clear minSpeedup, the yield ratio
// must clear minYield, and — against a committed baseline — both must
// hold the baseline's floors within tolerance. Smaller machines run the
// phases as a smoke test and record the gates as skipped: a starved
// runner cannot demonstrate a tail-latency win, only a regression.
func checkFleet(res *FleetResult, baselinePath string, tolerance, minSpeedup, minYield float64) error {
	for _, p := range res.Phases {
		if p.BidsPerSec <= 0 {
			return fmt.Errorf("fleet %s: no bids completed", p.Name)
		}
		if p.Awarded == 0 {
			return fmt.Errorf("fleet %s: nothing was ever awarded", p.Name)
		}
	}
	if res.NumCPU < 4 {
		res.SkipReason = fmt.Sprintf("routing gates need >= 4 CPUs, have %d", res.NumCPU)
		return nil
	}
	res.GatesEnforced = minSpeedup > 0 || minYield > 0
	if minSpeedup > 0 && res.SpeedupP99 < minSpeedup {
		return fmt.Errorf("top-k p99 speedup %.2fx is below the required %.1fx (fanout p99 / topk p99)",
			res.SpeedupP99, minSpeedup)
	}
	if minYield > 0 && res.YieldRatio < minYield {
		return fmt.Errorf("top-k yield ratio %.3f is below the required %.2f", res.YieldRatio, minYield)
	}
	if baselinePath == "" {
		return nil
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base FleetResult
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	if base.SpeedupP99 > 0 && res.SpeedupP99 < base.SpeedupP99*(1-tolerance) {
		return fmt.Errorf("top-k p99 speedup regressed: %.2fx vs baseline floor %.2fx (tolerance %.0f%%)",
			res.SpeedupP99, base.SpeedupP99, tolerance*100)
	}
	if base.YieldRatio > 0 && res.YieldRatio < base.YieldRatio*(1-tolerance/4) {
		return fmt.Errorf("top-k yield ratio regressed: %.3f vs baseline floor %.3f",
			res.YieldRatio, base.YieldRatio)
	}
	return nil
}
