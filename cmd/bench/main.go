// Command bench measures the scheduling core's throughput trajectory —
// dispatch events per second, admission-quote latency, and cost-kernel
// throughput — at pending-queue sizes n ∈ {100, 1k, 10k}, and writes the
// results as JSON (BENCH_core.json in CI).
//
// Each dispatch measurement runs the same scheduling event two ways: the
// seed path (re-rank the whole queue before every start, opportunity
// costs via the naive O(n²) Equation 4 sum) and the current path
// (core.PlanStarts over the shared-work kernels). The two paths start
// identical task sequences — the equivalence is property-tested in
// internal/core — so the ratio is a pure like-for-like speedup.
//
// With -baseline, the run fails (exit 1) if dispatch throughput regresses
// more than -tolerance below the committed floors, or if the measured
// speedup at the largest n falls under -min-speedup. The committed
// baseline (results/BENCH_core_baseline.json) holds deliberately
// conservative floors so shared CI runners do not flake.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/task"
)

// Result is the benchmark report schema.
type Result struct {
	GeneratedUnix int64  `json:"generated_unix"`
	GoVersion     string `json:"go_version"`
	GoMaxProcs    int    `json:"go_max_procs"`
	Processors    int    `json:"processors"`
	Quotes        int    `json:"quotes"`

	Dispatch []DispatchResult `json:"dispatch"`
	Quote    []QuoteResult    `json:"quote"`
	Kernel   []KernelResult   `json:"kernel"`
}

// DispatchResult compares one scheduling event (rank + start up to k
// tasks) on the seed path vs the single-pass path at queue depth N.
type DispatchResult struct {
	N                int     `json:"n"`
	SeedEventsPerSec float64 `json:"seed_events_per_sec"`
	FastEventsPerSec float64 `json:"fast_events_per_sec"`
	Speedup          float64 `json:"speedup"`
}

// QuoteResult compares quoting one probe task by full candidate rebuild
// vs incremental insertion into a shared base candidate.
type QuoteResult struct {
	N             int     `json:"n"`
	RebuildMicros float64 `json:"rebuild_us"`
	IncrMicros    float64 `json:"incremental_us"`
	Speedup       float64 `json:"speedup"`
}

// KernelResult compares all-n opportunity-cost computation (bounded
// penalties, Equation 4) between the naive quadratic sum and the sorted
// prefix-sum sweep; throughput is costs computed per second.
type KernelResult struct {
	N                  int     `json:"n"`
	GeneralCostsPerSec float64 `json:"general_costs_per_sec"`
	SortedCostsPerSec  float64 `json:"sorted_costs_per_sec"`
	Speedup            float64 `json:"speedup"`
}

func main() {
	var (
		out        = flag.String("out", "", "write the JSON report to this file (default stdout)")
		baseline   = flag.String("baseline", "", "compare against this committed baseline report; exit 1 on regression")
		tolerance  = flag.Float64("tolerance", 0.2, "allowed fractional shortfall below the baseline dispatch floors")
		minSpeedup = flag.Float64("min-speedup", 5, "required dispatch speedup at the largest n (0 disables)")
		procs      = flag.Int("procs", 16, "free processors per dispatch event")
		quotes     = flag.Int("quotes", 32, "probe tasks quoted against one base schedule")

		service         = flag.Bool("service", false, "run the site-service saturation benchmark instead of the core benches")
		clients         = flag.Int("clients", 16, "concurrent clients in -service mode")
		serviceDur      = flag.Duration("duration", 2*time.Second, "measurement window per -service phase")
		profileDir      = flag.String("profile-dir", "", "write mutex/block/cpu pprof profiles here in -service mode")
		phaseFilter     = flag.String("phase-filter", "", "only run -service phases whose mode/fsync/mix contains this substring")
		minQuoteSpeedup = flag.Float64("min-quote-speedup", 0, "required concurrent/locked quotes-per-sec ratio at fsync=always in -service mode (0 disables)")
		minAwardSpeedup = flag.Float64("min-award-speedup", 0, "required concurrent/locked awards-per-sec ratio at fsync=always in -service mode (0 disables)")
		obsDir          = flag.String("obs-dir", "", "write per-phase flight-recorder dumps (timeseries + ledger JSON) here in -service mode (CI uploads them as artifacts)")
		shards          = flag.Int("shards", 0, "task-book shards on the benched server in -service mode (0/1 = single book)")
		benchCodec      = flag.String("codec", "", "codec the -service bench clients request: json|binary (empty = plain v1 JSON)")

		scale       = flag.Bool("scale", false, "run the multi-core scaling sweep (GOMAXPROCS 1 and 4, sharded server, binary codec) instead of the core benches")
		minScaleEff = flag.Float64("min-scale-efficiency", 0, "required g4-s4-binary/baseline-g1-s1-json quotes-per-sec ratio in -scale mode (0 disables; auto-skipped below 4 CPUs)")

		wl      = flag.Bool("workload", false, "run the bursty-cohort traffic benchmark instead of the core benches")
		wlTasks = flag.Int("tasks", 4000, "tasks per -workload phase")
		wlRate  = flag.Float64("rate", 1500, "mean offered bids/sec in -workload mode (bursts preserved around it)")

		fleet           = flag.Bool("fleet", false, "run the digest-routing fleet benchmark (fanout vs top-k) instead of the core benches")
		fleetSites      = flag.Int("fleet-sites", 50, "site servers in the -fleet benchmark")
		fleetClients    = flag.Int("fleet-clients", 1000, "closed-loop clients in the -fleet benchmark")
		fleetBids       = flag.Int("fleet-bids", 4000, "bids submitted per -fleet phase")
		fleetTopK       = flag.Int("fleet-topk", 8, "candidate sites per bid in the -fleet top-k phase")
		fleetRate       = flag.Float64("fleet-rate", 200, "mean offered bids/sec in -fleet mode (bursts preserved around it)")
		minFleetSpeedup = flag.Float64("min-fleet-speedup", 0, "required fanout/topk p99 quote-latency ratio in -fleet mode (0 disables; auto-skipped below 4 CPUs)")
		minYieldRatio   = flag.Float64("min-yield-ratio", 0, "required topk/fanout realized-yield ratio in -fleet mode (0 disables; auto-skipped below 4 CPUs)")
	)
	flag.Parse()

	if *fleet {
		res, err := runFleet(fleetOpts{
			sites:   *fleetSites,
			clients: *fleetClients,
			bids:    *fleetBids,
			topk:    *fleetTopK,
			rate:    *fleetRate,
		})
		if err != nil {
			fatal(err)
		}
		fail := checkFleet(&res, *baseline, *tolerance, *minFleetSpeedup, *minYieldRatio)
		writeReport(res, *out)
		if fail != nil {
			fatal(fail)
		}
		if res.SkipReason != "" {
			fmt.Fprintln(os.Stderr, "bench: fleet routing gates skipped:", res.SkipReason)
		}
		return
	}

	if *wl {
		res, err := runWorkload(workloadOpts{
			clients: *clients,
			tasks:   *wlTasks,
			rate:    *wlRate,
		})
		if err != nil {
			fatal(err)
		}
		writeReport(res, *out)
		if fail := checkWorkload(res, *baseline, *tolerance); fail != nil {
			fatal(fail)
		}
		return
	}

	if *scale {
		res, err := runScale(scaleOpts{
			clients:  *clients,
			duration: *serviceDur,
		})
		if err != nil {
			fatal(err)
		}
		fail := checkScale(&res, *baseline, *tolerance, *minScaleEff)
		writeReport(res, *out)
		if fail != nil {
			fatal(fail)
		}
		if res.SkipReason != "" {
			fmt.Fprintln(os.Stderr, "bench: scale efficiency gate skipped:", res.SkipReason)
		}
		return
	}

	if *service {
		res, err := runService(serviceOpts{
			clients:     *clients,
			duration:    *serviceDur,
			profileDir:  *profileDir,
			phaseFilter: *phaseFilter,
			obsDir:      *obsDir,
			shards:      *shards,
			codec:       *benchCodec,
		})
		if err != nil {
			fatal(err)
		}
		writeReport(res, *out)
		if fail := checkService(res, *baseline, *tolerance, *minQuoteSpeedup, *minAwardSpeedup); fail != nil {
			fatal(fail)
		}
		return
	}

	sizes := []int{100, 1000, 10000}
	res := Result{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Processors:    *procs,
		Quotes:        *quotes,
	}
	for _, n := range sizes {
		res.Dispatch = append(res.Dispatch, benchDispatch(n, *procs))
		res.Quote = append(res.Quote, benchQuote(n, *quotes))
		res.Kernel = append(res.Kernel, benchKernel(n))
		fmt.Fprintf(os.Stderr, "bench: n=%d done\n", n)
	}

	writeReport(res, *out)
	if fail := check(res, *baseline, *tolerance, *minSpeedup); fail != nil {
		fatal(fail)
	}
}

// writeReport marshals any report schema to -out (or stdout).
func writeReport(res any, out string) {
	enc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

// check enforces the regression gates: dispatch throughput floors from
// the baseline report, and the headline single-pass speedup.
func check(res Result, baselinePath string, tolerance, minSpeedup float64) error {
	if minSpeedup > 0 && len(res.Dispatch) > 0 {
		last := res.Dispatch[len(res.Dispatch)-1]
		if last.Speedup < minSpeedup {
			return fmt.Errorf("dispatch speedup %.1fx at n=%d is below the required %.0fx",
				last.Speedup, last.N, minSpeedup)
		}
	}
	if baselinePath == "" {
		return nil
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base Result
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	floors := map[int]float64{}
	for _, d := range base.Dispatch {
		floors[d.N] = d.FastEventsPerSec
	}
	for _, d := range res.Dispatch {
		floor, ok := floors[d.N]
		if !ok {
			continue
		}
		if d.FastEventsPerSec < floor*(1-tolerance) {
			return fmt.Errorf("dispatch throughput at n=%d regressed: %.1f events/sec vs baseline floor %.1f (tolerance %.0f%%)",
				d.N, d.FastEventsPerSec, floor, tolerance*100)
		}
	}
	return nil
}

// makeTasks builds n pending tasks with exponential-ish runtimes and
// skewed values. Unbounded penalties (the paper's Section 5 default)
// keep FirstReward on its conditionally-stable path; the kernel bench
// bounds them separately to exercise the Equation 4 sweep.
func makeTasks(n int, bounded bool, seed int64) []*task.Task {
	rng := rand.New(rand.NewSource(seed))
	tasks := make([]*task.Task, n)
	for i := range tasks {
		runtime := 1 + rng.ExpFloat64()*100
		value := (1 + rng.Float64()*9) * runtime / 10
		decay := value / (3 * 100) * (0.5 + rng.Float64())
		bound := math.Inf(1)
		if bounded {
			bound = value * (0.5 + rng.Float64())
		}
		tasks[i] = task.New(task.ID(i+1), 0, runtime, value, decay, bound)
	}
	return tasks
}

// measure runs fn repeatedly until minDur elapses or maxIters is reached
// and returns iterations per second.
func measure(minDur time.Duration, maxIters int, fn func()) float64 {
	fn() // warm up (and fault in any lazily-allocated scratch)
	start := time.Now()
	iters := 0
	for time.Since(start) < minDur && iters < maxIters {
		fn()
		iters++
	}
	if iters == 0 {
		iters = 1
		fn()
	}
	return float64(iters) / time.Since(start).Seconds()
}

// seedDispatchEvent replays the seed scheduler: re-rank the entire queue
// before every start, with opportunity costs forced onto the naive
// quadratic path — exactly what each dispatch event cost before the
// single-pass refactor.
func seedDispatchEvent(now float64, free int, pending []*task.Task) []*task.Task {
	policy := core.FirstReward{Alpha: 0.3, DiscountRate: 0.01, ForceGeneralCost: true}
	rest := append([]*task.Task(nil), pending...)
	var starts []*task.Task
	for len(starts) < free && len(rest) > 0 {
		order := core.RankOrder(policy, now, rest)
		starts = append(starts, order[0])
		for i, t := range rest {
			if t == order[0] {
				rest = append(rest[:i], rest[i+1:]...)
				break
			}
		}
	}
	return starts
}

func benchDispatch(n, procs int) DispatchResult {
	pending := makeTasks(n, false, int64(n))
	now := 0.0
	fast := core.FirstReward{Alpha: 0.3, DiscountRate: 0.01}

	// The seed path is quadratic per rank and ranks once per start: cap
	// its iteration count so the 10k point stays affordable in CI.
	seedIters := map[int]int{100: 200, 1000: 20, 10000: 2}[n]
	seedRate := measure(100*time.Millisecond, seedIters, func() {
		seedDispatchEvent(now, procs, pending)
	})
	fastRate := measure(200*time.Millisecond, 10000, func() {
		core.PlanStarts(fast, now, procs, pending)
	})
	return DispatchResult{N: n, SeedEventsPerSec: seedRate, FastEventsPerSec: fastRate,
		Speedup: fastRate / seedRate}
}

func benchQuote(n, m int) QuoteResult {
	pending := makeTasks(n, false, int64(n)+1)
	probes := makeTasks(m, false, int64(n)+2)
	now := 0.0
	policy := core.FirstReward{Alpha: 0.3, DiscountRate: 0.01}
	busy := make([]float64, 16)

	rebuildRate := measure(200*time.Millisecond, 2000, func() {
		for _, p := range probes {
			withProbe := append(append(make([]*task.Task, 0, n+1), pending...), p)
			core.BuildCandidate(policy, now, len(busy), busy, withProbe)
		}
	})
	incrRate := measure(200*time.Millisecond, 20000, func() {
		base := core.BuildCandidate(policy, now, len(busy), busy, pending)
		for _, p := range probes {
			if _, ok := base.WithTask(p); !ok {
				panic("bench: incremental insertion unexpectedly unsupported")
			}
		}
	})
	// Per-quote latency in microseconds: each iteration quotes m probes.
	rebuildUS := 1e6 / (rebuildRate * float64(m))
	incrUS := 1e6 / (incrRate * float64(m))
	return QuoteResult{N: n, RebuildMicros: rebuildUS, IncrMicros: incrUS,
		Speedup: rebuildUS / incrUS}
}

func benchKernel(n int) KernelResult {
	tasks := makeTasks(n, true, int64(n)+3)
	now := 0.0

	generalIters := map[int]int{100: 2000, 1000: 50, 10000: 2}[n]
	generalRate := measure(100*time.Millisecond, generalIters, func() {
		core.OpportunityCosts(now, tasks, true)
	})
	sortedRate := measure(200*time.Millisecond, 100000, func() {
		core.OpportunityCosts(now, tasks, false)
	})
	return KernelResult{
		N:                  n,
		GeneralCostsPerSec: generalRate * float64(n),
		SortedCostsPerSec:  sortedRate * float64(n),
		Speedup:            sortedRate / generalRate,
	}
}
