package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/market"
	"repro/internal/obs"
	"repro/internal/task"
	"repro/internal/wire"
	"repro/internal/workload"
)

// WorkloadResult is the traffic-engine benchmark report schema
// (results/BENCH_workload.json in CI): the concurrent site service driven
// open-loop by generated traces — a smooth phase (exponential arrivals)
// and a bursty phase (Gamma/Weibull cohort arrivals under a multi-period
// rate envelope) at the same mean offered rate, so the phases differ only
// in arrival variability.
type WorkloadResult struct {
	GeneratedUnix int64   `json:"generated_unix"`
	GoVersion     string  `json:"go_version"`
	GoMaxProcs    int     `json:"go_max_procs"`
	Clients       int     `json:"clients"`
	Tasks         int     `json:"tasks"`
	TargetRate    float64 `json:"target_bids_per_sec"`

	Phases []WorkloadPhase `json:"phases"`
}

// WorkloadPhase is one paced replay of a generated trace.
type WorkloadPhase struct {
	Name  string  `json:"name"`   // "smooth" or "bursty"
	GapCV float64 `json:"gap_cv"` // realized inter-arrival CV of the trace

	BidsPerSec   float64 `json:"bids_per_sec"`
	AwardsPerSec float64 `json:"awards_per_sec"`
	AcceptRate   float64 `json:"accept_rate"`
	BidP50Micros float64 `json:"bid_p50_us"`
	BidP99Micros float64 `json:"bid_p99_us"`

	Cohorts []WorkloadCohort `json:"cohorts,omitempty"`
}

// WorkloadCohort reports per-cohort outcomes within a phase; burst
// sensitivity shows up as divergent p99s across cohorts.
type WorkloadCohort struct {
	Name         string  `json:"name"`
	Tasks        int     `json:"tasks"`
	Awarded      int     `json:"awarded"`
	BidP99Micros float64 `json:"bid_p99_us"`
}

// workloadOpts carries the -workload flags.
type workloadOpts struct {
	clients int
	tasks   int
	rate    float64 // mean offered bids/sec across the run
}

// workloadCohorts is the shared two-cohort mix: many small interactive
// clients with a Zipf-skewed rate split next to a few heavy batch
// submitters. The bursty phase swaps their arrival processes to
// high-CV Gamma/Weibull and adds a rate envelope; the smooth phase keeps
// the same mix on exponential arrivals, so the comparison isolates
// arrival variability.
func workloadCohorts(bursty bool) []workload.Cohort {
	interactive := workload.Cohort{
		Name: "interactive", Weight: 1,
		Clients: 8, ClientSkew: 1,
		MeanRuntime: 1.5,
	}
	batch := workload.Cohort{
		Name: "batch", Weight: 1,
		Clients:     2,
		MeanRuntime: 6,
		BatchSize:   4,
	}
	if bursty {
		interactive.ArrivalKind = workload.DistGamma
		interactive.ArrivalCV = 4
		batch.ArrivalKind = workload.DistWeibull
		batch.ArrivalCV = 2.5
	}
	return []workload.Cohort{interactive, batch}
}

// workloadTrace generates one phase's trace. Short runtimes (a few
// simulation units) keep awarded tasks churning through the book at the
// service bench's 20µs/unit timescale.
func workloadTrace(name string, opts workloadOpts) (*workload.Trace, error) {
	spec := workload.Default()
	spec.Jobs = opts.tasks
	spec.Seed = 1
	spec.Processors = 8
	spec.Load = 1.2
	spec.ArrivalKind = workload.DistExponential
	spec.ArrivalCV = 1
	spec.Cohorts = workloadCohorts(name == "bursty")
	if name == "bursty" {
		// Two superimposed diurnal-style waves on top of the per-stream
		// burstiness; the mix's aggregate task rate is ~4/unit, so the
		// periods span a few waves across the run.
		spec.Envelope = workload.Envelope{
			{Amplitude: 0.4, Period: 300},
			{Amplitude: 0.2, Period: 80},
		}
	}
	return workload.Generate(spec)
}

// gapCV returns the coefficient of variation of the trace's inter-arrival
// gaps — the burstiness actually realized, not just requested.
func gapCV(tr *workload.Trace) float64 {
	if len(tr.Tasks) < 3 {
		return 0
	}
	var gaps []float64
	for i := 1; i < len(tr.Tasks); i++ {
		gaps = append(gaps, tr.Tasks[i].Arrival-tr.Tasks[i-1].Arrival)
	}
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / float64(len(gaps))
	if mean <= 0 {
		return 0
	}
	var ss float64
	for _, g := range gaps {
		ss += (g - mean) * (g - mean)
	}
	return math.Sqrt(ss/float64(len(gaps))) / mean
}

// runWorkload measures both phases against fresh concurrent-mode servers.
func runWorkload(opts workloadOpts) (WorkloadResult, error) {
	res := WorkloadResult{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Clients:       opts.clients,
		Tasks:         opts.tasks,
		TargetRate:    opts.rate,
	}
	for _, name := range []string{"smooth", "bursty"} {
		p, err := runWorkloadPhase(name, opts)
		if err != nil {
			return res, fmt.Errorf("phase %s: %w", name, err)
		}
		res.Phases = append(res.Phases, p)
		fmt.Fprintf(os.Stderr, "bench: workload %s: gap cv %.2f, %.0f bids/s, %.0f awards/s, bid p99 %.0fµs\n",
			p.Name, p.GapCV, p.BidsPerSec, p.AwardsPerSec, p.BidP99Micros)
	}
	return res, nil
}

func runWorkloadPhase(name string, opts workloadOpts) (WorkloadPhase, error) {
	tr, err := workloadTrace(name, opts)
	if err != nil {
		return WorkloadPhase{}, err
	}
	first, last := tr.Span()
	span := last - first
	if span <= 0 {
		return WorkloadPhase{}, fmt.Errorf("degenerate trace span %.3f", span)
	}
	// Wall-clock nanoseconds per simulation unit, chosen so the run's MEAN
	// submission rate hits the target; the trace's relative gaps — the
	// bursts — are preserved.
	meanGap := span / float64(len(tr.Tasks)-1)
	wallPerUnit := (float64(time.Second) / opts.rate) / meanGap

	dir, err := os.MkdirTemp("", "bench-workload-*")
	if err != nil {
		return WorkloadPhase{}, err
	}
	defer os.RemoveAll(dir)
	srv, err := wire.NewServer("127.0.0.1:0", wire.ServerConfig{
		SiteID:     "bench",
		Processors: 8,
		Policy:     core.FirstReward{Alpha: 0.3, DiscountRate: 0.01},
		TimeScale:  20 * time.Microsecond,
		Metrics:    obs.NewRegistry(),
		DataDir:    dir,
		Fsync:      durable.FsyncInterval,
		FsyncEvery: 5 * time.Millisecond,
	})
	if err != nil {
		return WorkloadPhase{}, err
	}
	defer srv.Close()

	// Open-loop drive: a dispatcher paces submissions on the trace's
	// arrival clock and a worker pool carries them to the service. During a
	// burst the queue between them backs up and bid latency absorbs the
	// overload — exactly the behavior this benchmark exists to observe.
	type outcome struct {
		cohort  string
		awarded bool
		lat     float64 // seconds
	}
	work := make(chan *task.Task, len(tr.Tasks))
	outcomes := make([]outcome, len(tr.Tasks))
	var next uint64
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < opts.clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := wire.Dial(srv.Addr())
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer c.Close()
			c.SetOnSettled(func(wire.Envelope) {})
			for t := range work {
				bid := market.BidFromTask(t)
				bid.Arrival = 0 // live protocol: release is the submission instant
				began := time.Now()
				sb, ok, err := c.Propose(bid)
				lat := time.Since(began).Seconds()
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				awarded := false
				if ok {
					if _, ok2, err := c.Award(bid, sb); err == nil && ok2 {
						awarded = true
					}
				}
				mu.Lock()
				outcomes[next] = outcome{cohort: t.Cohort, awarded: awarded, lat: lat}
				next++
				mu.Unlock()
			}
		}()
	}

	began := time.Now()
	for i, t := range tr.Tasks {
		target := time.Duration((t.Arrival - first) * wallPerUnit)
		if sleep := target - time.Since(began); sleep > 0 {
			time.Sleep(sleep)
		}
		work <- tr.Tasks[i]
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(began).Seconds()
	if firstErr != nil {
		return WorkloadPhase{}, firstErr
	}

	done := outcomes[:next]
	perCohort := map[string]*WorkloadCohort{}
	var names []string
	var lats []float64
	awards := 0
	for _, o := range done {
		cs := perCohort[o.cohort]
		if cs == nil {
			cs = &WorkloadCohort{Name: o.cohort}
			perCohort[o.cohort] = cs
			names = append(names, o.cohort)
		}
		cs.Tasks++
		if o.awarded {
			cs.Awarded++
			awards++
		}
		lats = append(lats, o.lat)
	}
	sort.Strings(names)
	p := WorkloadPhase{
		Name:         name,
		GapCV:        gapCV(tr),
		BidsPerSec:   float64(len(done)) / elapsed,
		AwardsPerSec: float64(awards) / elapsed,
		AcceptRate:   float64(awards) / float64(len(done)),
		BidP50Micros: percentile(lats, 0.50) * 1e6,
		BidP99Micros: percentile(lats, 0.99) * 1e6,
	}
	for _, n := range names {
		cs := perCohort[n]
		var cl []float64
		for _, o := range done {
			if o.cohort == n {
				cl = append(cl, o.lat)
			}
		}
		cs.BidP99Micros = percentile(cl, 0.99) * 1e6
		p.Cohorts = append(p.Cohorts, *cs)
	}
	return p, nil
}

// checkWorkload enforces the traffic-engine regression gates: per-phase
// sustained bids/sec floors from the committed baseline. Latency
// percentiles and per-cohort splits are reported but not gated — they are
// too machine-sensitive for shared CI runners.
func checkWorkload(res WorkloadResult, baselinePath string, tolerance float64) error {
	for _, p := range res.Phases {
		if p.BidsPerSec <= 0 {
			return fmt.Errorf("phase %s: no bids completed", p.Name)
		}
	}
	if baselinePath == "" {
		return nil
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base WorkloadResult
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	for _, b := range base.Phases {
		var cur *WorkloadPhase
		for i := range res.Phases {
			if res.Phases[i].Name == b.Name {
				cur = &res.Phases[i]
				break
			}
		}
		if cur == nil {
			continue
		}
		if cur.BidsPerSec < b.BidsPerSec*(1-tolerance) {
			return fmt.Errorf("workload %s bids/sec regressed: %.0f vs baseline floor %.0f (tolerance %.0f%%)",
				b.Name, cur.BidsPerSec, b.BidsPerSec, tolerance*100)
		}
	}
	return nil
}
