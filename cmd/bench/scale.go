package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"time"
)

// ScaleResult is the multi-core scaling report schema
// (results/BENCH_scale.json in CI): the sharded site server measured at
// GOMAXPROCS=1 and GOMAXPROCS=4, each phase in its own child process so
// the GOMAXPROCS setting (and a cold runtime) genuinely governs the
// measurement. The headline is ScalingEfficiency: quotes/sec of the
// 4-core sharded binary-codec configuration over the 1-core single-shard
// JSON floor — the end-to-end payoff of the shard + codec work.
type ScaleResult struct {
	GeneratedUnix int64   `json:"generated_unix"`
	GoVersion     string  `json:"go_version"`
	NumCPU        int     `json:"num_cpu"`
	Clients       int     `json:"clients"`
	DurationSec   float64 `json:"duration_sec"`

	Phases []ScalePhase `json:"phases"`

	// ScalingEfficiency is quotes/sec at g4-s4-binary over g1-s1-json,
	// measured in this run. Meaningful only when NumCPU >= 4; on smaller
	// machines the phases still run (as a smoke test) but the ratio hovers
	// near 1 and EfficiencyEnforced records that the gate was skipped.
	ScalingEfficiency  float64 `json:"scaling_efficiency"`
	EfficiencyEnforced bool    `json:"efficiency_enforced"`
	SkipReason         string  `json:"skip_reason,omitempty"`
}

// ScalePhase is one (GOMAXPROCS, shards, codec) saturation measurement:
// the concurrent server at fsync=interval under the quote mix, the same
// workload shape the -service bench gates.
type ScalePhase struct {
	Name       string `json:"name"` // e.g. "g1-s1-json"
	GoMaxProcs int    `json:"go_max_procs"`
	Shards     int    `json:"shards"`
	Codec      string `json:"codec"`

	QuotesPerSec float64 `json:"quotes_per_sec"`
	AwardsPerSec float64 `json:"awards_per_sec"`
	BidP50Micros float64 `json:"bid_p50_us"`
	BidP99Micros float64 `json:"bid_p99_us"`
}

// scalePhases is the sweep: the 1-core floor on both codecs (isolating
// the codec's own win from the sharding win), then the 4-core sharded
// binary configuration the efficiency gate measures.
var scalePhases = []struct {
	name       string
	gomaxprocs int
	shards     int
	codec      string
}{
	{"g1-s1-json", 1, 1, "json"},
	{"g1-s1-binary", 1, 1, "binary"},
	{"g4-s4-binary", 4, 4, "binary"},
}

type scaleOpts struct {
	clients  int
	duration time.Duration
}

// runScale executes the sweep, one child process per phase. The child is
// this same binary in single-phase -service mode (concurrent/interval/
// quote) with GOMAXPROCS pinned through the environment — the only way
// to vary it per measurement without contaminating the parent.
func runScale(opts scaleOpts) (ScaleResult, error) {
	res := ScaleResult{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		Clients:       opts.clients,
		DurationSec:   opts.duration.Seconds(),
	}
	for _, ph := range scalePhases {
		p, err := runScalePhase(ph.name, ph.gomaxprocs, ph.shards, ph.codec, opts)
		if err != nil {
			return res, fmt.Errorf("scale phase %s: %w", ph.name, err)
		}
		res.Phases = append(res.Phases, p)
		fmt.Fprintf(os.Stderr, "bench: scale %s: %.0f quotes/s, %.0f awards/s, bid p99 %.0fµs\n",
			p.Name, p.QuotesPerSec, p.AwardsPerSec, p.BidP99Micros)
	}
	if floor, ok := findScalePhase(res.Phases, "g1-s1-json"); ok {
		if top, ok := findScalePhase(res.Phases, "g4-s4-binary"); ok && floor.QuotesPerSec > 0 {
			res.ScalingEfficiency = top.QuotesPerSec / floor.QuotesPerSec
		}
	}
	return res, nil
}

func findScalePhase(phases []ScalePhase, name string) (ScalePhase, bool) {
	for _, p := range phases {
		if p.Name == name {
			return p, true
		}
	}
	return ScalePhase{}, false
}

// runScalePhase re-executes this binary as a single-phase -service child
// with GOMAXPROCS pinned in its environment and reads the phase back.
func runScalePhase(name string, gomaxprocs, shards int, codec string, opts scaleOpts) (ScalePhase, error) {
	exe, err := os.Executable()
	if err != nil {
		return ScalePhase{}, err
	}
	tmp, err := os.CreateTemp("", "bench-scale-*.json")
	if err != nil {
		return ScalePhase{}, err
	}
	tmp.Close()
	defer os.Remove(tmp.Name())
	args := []string{"-service",
		"-clients", strconv.Itoa(opts.clients),
		"-duration", opts.duration.String(),
		"-phase-filter", "concurrent/interval/quote",
		"-shards", strconv.Itoa(shards),
		"-codec", codec,
		"-out", tmp.Name()}
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	cmd.Env = append(os.Environ(), "GOMAXPROCS="+strconv.Itoa(gomaxprocs))
	if err := cmd.Run(); err != nil {
		return ScalePhase{}, fmt.Errorf("child bench: %w", err)
	}
	raw, err := os.ReadFile(tmp.Name())
	if err != nil {
		return ScalePhase{}, err
	}
	var child ServiceResult
	if err := json.Unmarshal(raw, &child); err != nil {
		return ScalePhase{}, fmt.Errorf("child report: %w", err)
	}
	p, ok := findPhase(child.Phases, "concurrent", "interval", "quote")
	if !ok {
		return ScalePhase{}, fmt.Errorf("child report missing concurrent/interval/quote phase")
	}
	if child.GoMaxProcs != gomaxprocs {
		return ScalePhase{}, fmt.Errorf("child ran at GOMAXPROCS=%d, want %d", child.GoMaxProcs, gomaxprocs)
	}
	return ScalePhase{
		Name:         name,
		GoMaxProcs:   gomaxprocs,
		Shards:       shards,
		Codec:        codec,
		QuotesPerSec: p.QuotesPerSec,
		AwardsPerSec: p.AwardsPerSec,
		BidP50Micros: p.BidP50Micros,
		BidP99Micros: p.BidP99Micros,
	}, nil
}

// checkScale enforces the multi-core gates against the committed
// baseline: the 1-core phases must hold their throughput floors, and —
// on a machine with at least 4 CPUs — the 4-core sharded binary phase
// must clear minEfficiency times the baseline's committed 1-core JSON
// floor. On smaller machines the efficiency gate is recorded as skipped
// rather than failed: a 1-core runner cannot demonstrate scaling, only
// regressions.
func checkScale(res *ScaleResult, baselinePath string, tolerance, minEfficiency float64) error {
	if res.NumCPU < 4 {
		res.SkipReason = fmt.Sprintf("efficiency gate needs >= 4 CPUs, have %d", res.NumCPU)
	} else {
		res.EfficiencyEnforced = minEfficiency > 0
	}
	if baselinePath == "" {
		return nil
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base ScaleResult
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	for _, b := range base.Phases {
		if b.GoMaxProcs != 1 {
			continue // multi-core floors only make sense on multi-core runners
		}
		cur, ok := findScalePhase(res.Phases, b.Name)
		if !ok {
			continue
		}
		if cur.QuotesPerSec < b.QuotesPerSec*(1-tolerance) {
			return fmt.Errorf("quotes/sec at %s regressed: %.0f vs baseline floor %.0f (tolerance %.0f%%)",
				b.Name, cur.QuotesPerSec, b.QuotesPerSec, tolerance*100)
		}
	}
	if !res.EfficiencyEnforced || minEfficiency <= 0 {
		return nil
	}
	floor, ok := findScalePhase(base.Phases, "g1-s1-json")
	if !ok || floor.QuotesPerSec <= 0 {
		return fmt.Errorf("baseline %s has no g1-s1-json floor", baselinePath)
	}
	top, ok := findScalePhase(res.Phases, "g4-s4-binary")
	if !ok {
		return fmt.Errorf("run has no g4-s4-binary phase")
	}
	if ratio := top.QuotesPerSec / floor.QuotesPerSec; ratio < minEfficiency {
		return fmt.Errorf("scaling efficiency %.2fx (g4-s4-binary %.0f quotes/s over committed 1-core floor %.0f) is below the required %.1fx",
			ratio, top.QuotesPerSec, floor.QuotesPerSec, minEfficiency)
	}
	return nil
}
