// Command marketsim regenerates the paper's evaluation figures.
//
// Usage:
//
//	marketsim [flags] fig3|fig4|fig5|fig6|fig7|all
//
// Each figure prints the same series the paper plots, as an aligned table.
// With -csvdir, each figure is additionally written as CSV for plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	var (
		jobs    = flag.Int("jobs", 5000, "jobs per trace (the paper uses 5000)")
		seeds   = flag.Int("seeds", 5, "trace replications averaged per point")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 1, "base seed for replication streams")
		csvdir  = flag.String("csvdir", "", "directory to write per-figure CSV files")

		// Workload calibration overrides (0 keeps each figure's default).
		// The paper does not publish its decay magnitudes; EXPERIMENTS.md
		// records the calibration used for the committed results.
		zcf     = flag.Float64("zcf", 0, "zero-cross factor override: mean delay (in mean runtimes) at which value reaches zero")
		valueCV = flag.Float64("valuecv", 0, "within-class value-rate coefficient of variation override")
		decayCV = flag.Float64("decaycv", 0, "within-class decay-rate coefficient of variation override")
		preempt = flag.Bool("preempt", false, "enable preemption in the fig4/fig5 alpha sweeps")
		fig7abs = flag.Bool("fig7abs", false, "plot fig7 as absolute admission-controlled yield instead of improvement %")

		// The "custom" figure sweeps load for user-supplied policy specs.
		policy   = flag.String("policy", "firstreward:alpha=0.3,rate=0.01", "custom: candidate policy spec (see core.ParseSpec)")
		admSpec  = flag.String("admission", "slack:threshold=0", "custom: candidate admission spec (accept-all, slack:threshold=X, min-yield:threshold=X)")
		baseline = flag.String("baseline", "firstprice", "custom: baseline policy spec")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: marketsim [flags] fig3|fig4|fig5|fig6|fig7|regimes|workload|multisite|sens-decay|sens-load|economy|custom|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	opts := experiments.Options{Jobs: *jobs, Seeds: *seeds, Workers: *workers, BaseSeed: *seed}
	override := func(spec *workload.Spec) {
		if *zcf > 0 {
			spec.ZeroCrossFactor = *zcf
		}
		if *valueCV > 0 {
			spec.ValueCV = *valueCV
		}
		if *decayCV > 0 {
			spec.DecayCV = *decayCV
		}
	}
	runners := map[string]func() *experiments.Figure{
		"fig3": func() *experiments.Figure {
			cfg := experiments.DefaultFig3()
			cfg.Options = opts
			override(&cfg.Spec)
			return experiments.RunFig3(cfg)
		},
		"fig4": func() *experiments.Figure {
			cfg := experiments.DefaultFig4()
			cfg.Options = opts
			cfg.Preemptive = *preempt
			override(&cfg.Spec)
			return experiments.RunAlphaSweep(cfg)
		},
		"fig5": func() *experiments.Figure {
			cfg := experiments.DefaultFig5()
			cfg.Options = opts
			cfg.Preemptive = *preempt
			override(&cfg.Spec)
			return experiments.RunAlphaSweep(cfg)
		},
		"fig6": func() *experiments.Figure {
			cfg := experiments.DefaultFig6()
			cfg.Options = opts
			override(&cfg.Spec)
			return experiments.RunFig6(cfg)
		},
		"fig7": func() *experiments.Figure {
			cfg := experiments.DefaultFig7()
			cfg.Options = opts
			cfg.Absolute = *fig7abs
			override(&cfg.Spec)
			return experiments.RunFig7(cfg)
		},
		"regimes": func() *experiments.Figure {
			cfg := experiments.DefaultRegimes()
			cfg.Options = opts
			override(&cfg.Spec)
			return experiments.RunRegimes(cfg)
		},
		"workload": func() *experiments.Figure {
			cfg := experiments.DefaultWorkloadRegimes()
			cfg.Options = opts
			override(&cfg.Spec)
			return experiments.RunWorkloadRegimes(cfg)
		},
		"multisite": func() *experiments.Figure {
			cfg := experiments.DefaultMultiSite()
			cfg.Options = opts
			override(&cfg.Spec)
			return experiments.RunMultiSite(cfg)
		},
		"sens-decay": func() *experiments.Figure {
			cfg := experiments.DefaultDecaySensitivity()
			cfg.Options = opts
			override(&cfg.Spec)
			return experiments.RunDecaySensitivity(cfg)
		},
		"sens-load": func() *experiments.Figure {
			cfg := experiments.DefaultLoadSensitivity()
			cfg.Options = opts
			override(&cfg.Spec)
			return experiments.RunLoadSensitivity(cfg)
		},
		"economy": func() *experiments.Figure {
			cfg := experiments.DefaultEconomy()
			cfg.Options = opts
			override(&cfg.Spec)
			return experiments.RunEconomy(cfg)
		},
		"custom": func() *experiments.Figure {
			cfg := experiments.DefaultCustom()
			cfg.Options = opts
			cfg.PolicySpec = *policy
			cfg.AdmissionSpec = *admSpec
			cfg.BaselineSpec = *baseline
			override(&cfg.Spec)
			fig, err := experiments.RunCustom(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "marketsim: %v\n", err)
				os.Exit(2)
			}
			return fig
		},
	}

	var names []string
	switch arg := flag.Arg(0); arg {
	case "all":
		names = []string{"fig3", "fig4", "fig5", "fig6", "fig7"}
	default:
		if _, ok := runners[arg]; !ok {
			fmt.Fprintf(os.Stderr, "marketsim: unknown figure %q\n", arg)
			flag.Usage()
			os.Exit(2)
		}
		names = []string{arg}
	}

	for _, name := range names {
		start := time.Now()
		fig := runners[name]()
		fig.Print(os.Stdout)
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		if *csvdir != "" {
			if err := writeCSV(*csvdir, fig); err != nil {
				fmt.Fprintf(os.Stderr, "marketsim: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func writeCSV(dir string, fig *experiments.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fig.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fig.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}
