// Command tracegen generates synthetic workload traces (Section 4.1 of the
// paper) and writes them as JSON for later replay by sitesim or custom
// harnesses.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/workload"
)

// cohortFlags collects repeated -cohort values.
type cohortFlags []workload.Cohort

func (c *cohortFlags) String() string { return fmt.Sprintf("%d cohorts", len(*c)) }

func (c *cohortFlags) Set(s string) error {
	co, err := workload.ParseCohort(s)
	if err != nil {
		return err
	}
	*c = append(*c, co)
	return nil
}

// parseDistSpec resolves a distribution spec `kind[:cv=X]` — the same
// grammar the policy flags use — into a DistKind and optional CV override
// (0 means keep the spec default).
func parseDistSpec(s string) (workload.DistKind, float64, error) {
	spec, err := core.SplitSpec(s)
	if err != nil {
		return "", 0, err
	}
	if err := spec.Check([]string{"cv"}, nil); err != nil {
		return "", 0, fmt.Errorf("%s: %w", spec.Name, err)
	}
	cv, err := spec.Float("cv", 0)
	if err != nil {
		return "", 0, err
	}
	return workload.DistKind(spec.Name), cv, nil
}

func main() {
	var (
		out     = flag.String("o", "", "output file (default stdout)")
		jobs    = flag.Int("jobs", 5000, "number of jobs")
		procs   = flag.Int("procs", 16, "site processors the load factor is computed against")
		seed    = flag.Int64("seed", 1, "generator seed")
		load    = flag.Float64("load", 1, "load factor")
		meanRun = flag.Float64("meanruntime", 100, "mean minimum run time")
		runKind = flag.String("runtimes", "exp", "runtime distribution spec: exp|normal|const|pareto|lognormal|gamma|weibull, optionally kind:cv=X")
		arrKind = flag.String("arrivals", "exp", "inter-arrival distribution spec: exp|normal|const|pareto|lognormal|gamma|weibull, optionally kind:cv=X")
		batch   = flag.Int("batch", 1, "jobs per arrival batch")
		vskew   = flag.Float64("vskew", 1, "value skew ratio")
		dskew   = flag.Float64("dskew", 1, "decay skew ratio")
		zcf     = flag.Float64("zcf", 3, "zero-cross factor (mean runtimes of delay until value hits zero)")
		bound   = flag.Float64("bound", -1, "penalty bound (-1 = unbounded)")
		summary = flag.Bool("summary", false, "print a trace summary to stderr")
		envSpec = flag.String("envelope", "", "rate envelope terms 'amp=A,period=P[,phase=F]' joined by '+'")
	)
	var cohorts cohortFlags
	flag.Var(&cohorts, "cohort", "cohort spec name[:weight=W,clients=N,arrivals=KIND,acv=CV,...] (repeatable; see workload.ParseCohort)")
	flag.Parse()

	spec := workload.Default()
	spec.Jobs = *jobs
	spec.Processors = *procs
	spec.Seed = *seed
	spec.Load = *load
	spec.MeanRuntime = *meanRun
	rk, rcv, err := parseDistSpec(*runKind)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen: -runtimes:", err)
		os.Exit(2)
	}
	ak, acv, err := parseDistSpec(*arrKind)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen: -arrivals:", err)
		os.Exit(2)
	}
	spec.RuntimeKind = rk
	spec.ArrivalKind = ak
	if rcv > 0 {
		spec.RuntimeCV = rcv
	}
	if acv > 0 {
		spec.ArrivalCV = acv
	}
	spec.BatchSize = *batch
	spec.ValueSkew = *vskew
	spec.DecaySkew = *dskew
	spec.ZeroCrossFactor = *zcf
	if *bound >= 0 {
		spec.Bound = *bound
	} else {
		spec.Bound = math.Inf(1)
	}
	env, err := workload.ParseEnvelope(*envSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen: -envelope:", err)
		os.Exit(2)
	}
	spec.Envelope = env
	spec.Cohorts = cohorts

	tr, err := workload.Generate(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	if *out != "" {
		// WriteFile checks the Close error: a full disk surfaces at close
		// time on some filesystems, and a silently truncated trace must not
		// exit zero.
		if err := tr.WriteFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	} else if err := tr.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if *summary {
		first, last := tr.Span()
		fmt.Fprintf(os.Stderr, "trace: %d jobs over [%.1f, %.1f], total work %.0f, offered load %.3f\n",
			len(tr.Tasks), first, last, tr.TotalWork(), tr.OfferedLoad())
	}
}
