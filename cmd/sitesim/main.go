// Command sitesim replays a trace file (from tracegen) through a single
// simulated task-service site and reports the outcome: total yield, yield
// rate, acceptance, delays.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/admission"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/site"
	"repro/internal/task"
	"repro/internal/workload"
)

func main() {
	var (
		in        = flag.String("trace", "", "trace file from tracegen (required)")
		procs     = flag.Int("procs", 0, "processors (default: trace's spec)")
		policy    = flag.String("policy", "firstprice", "policy spec: fcfs|srpt|swpt|firstprice|pv[:rate=]|firstreward[:alpha=,rate=,general]|scheduledprice[:procs=,rounds=]")
		adm       = flag.String("admission", "", "admission spec: accept-all|slack[:threshold=]|min-yield[:threshold=] (empty: accept-all)")
		discount  = flag.Float64("discount", 0.01, "discount rate for admission slack quoting")
		preempt   = flag.Bool("preempt", false, "enable preemption")
		restart   = flag.Bool("restart", false, "preemption loses progress")
		report    = flag.Bool("report", false, "print the per-class distributional report")
		byCohort  = flag.Bool("by-cohort", false, "print per-cohort outcomes (trace-v2 cohort labels)")
		traceOut  = flag.String("trace-out", "", "write the scheduling audit log as JSON task-lifecycle events to this file (\"-\" for stderr)")
		ledgerOut = flag.String("ledger-out", "", "write the final contract-ledger snapshot as JSON to this file (\"-\" for stdout)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "sitesim: -trace is required")
		flag.Usage()
		os.Exit(2)
	}

	tr, err := workload.ReadFile(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitesim:", err)
		os.Exit(1)
	}

	pol, err := core.ParseSpec(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitesim:", err)
		os.Exit(2)
	}
	admPol, err := admission.ParseSpec(*adm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitesim:", err)
		os.Exit(2)
	}

	p := tr.Spec.Processors
	if *procs > 0 {
		p = *procs
	}
	cfg := site.Config{
		Processors:        p,
		Policy:            pol,
		Preemptive:        *preempt,
		PreemptionRestart: *restart,
		Admission:         admPol,
		DiscountRate:      *discount,
	}
	var recorders []site.Recorder
	if *traceOut != "" {
		w := os.Stderr
		if *traceOut != "-" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sitesim:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		recorders = append(recorders, site.NewObsRecorder(nil, obs.NewTracer(w, "sitesim"), "sitesim"))
	}
	var ledger *obs.Ledger
	if *ledgerOut != "" {
		ledger = obs.NewLedger(obs.LedgerConfig{
			Site: "sitesim", Policy: pol.Name(), Capacity: len(tr.Tasks) + 1,
		})
		recorders = append(recorders, site.NewLedgerRecorder(ledger))
	}
	var opts []site.Option
	if r := site.MultiRecorder(recorders...); r != nil {
		opts = append(opts, site.WithRecorder(r))
	}

	tasks := tr.Clone()
	m := site.RunTrace(tasks, cfg, opts...)
	if ledger != nil {
		w := os.Stdout
		if *ledgerOut != "-" {
			f, err := os.Create(*ledgerOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sitesim:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := ledger.WriteJSON(w); err != nil {
			fmt.Fprintln(os.Stderr, "sitesim:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("policy:          %s\n", pol.Name())
	fmt.Printf("admission:       %s\n", admPol.Name())
	fmt.Printf("processors:      %d\n", p)
	fmt.Printf("submitted:       %d\n", m.Submitted)
	fmt.Printf("accepted:        %d (%.1f%%)\n", m.Accepted, 100*m.AcceptanceRate())
	fmt.Printf("completed:       %d\n", m.Completed)
	fmt.Printf("preemptions:     %d\n", m.Preemptions)
	fmt.Printf("rank ops:        %d\n", m.RankOps)
	fmt.Printf("total yield:     %.2f\n", m.TotalYield)
	fmt.Printf("yield rate:      %.4f\n", m.YieldRate())
	fmt.Printf("mean delay:      %.2f\n", m.MeanDelay())
	fmt.Printf("active interval: %.1f\n", m.ActiveInterval())
	if *report {
		fmt.Println()
		analysis.Analyze(tasks).Print(os.Stdout)
		fmt.Printf("gini(yield):     %.3f\n", analysis.GiniYield(tasks))
	}
	if *byCohort {
		fmt.Println()
		printCohortReport(tasks)
	}
}

// cohortStats aggregates outcomes for one cohort label.
type cohortStats struct {
	submitted int
	completed int
	yield     float64
	delay     float64
}

// printCohortReport tabulates outcomes by the trace-v2 cohort label.
// Unlabeled (v1) tasks fall under "(none)".
func printCohortReport(tasks []*task.Task) {
	stats := map[string]*cohortStats{}
	var names []string
	for _, t := range tasks {
		name := t.Cohort
		if name == "" {
			name = "(none)"
		}
		cs := stats[name]
		if cs == nil {
			cs = &cohortStats{}
			stats[name] = cs
			names = append(names, name)
		}
		cs.submitted++
		if t.State == task.Completed {
			cs.completed++
			cs.yield += t.Yield
			cs.delay += t.Delay(t.Completion)
		}
	}
	sort.Strings(names)
	fmt.Printf("%-16s %9s %9s %12s %10s\n", "cohort", "submitted", "completed", "yield", "meandelay")
	for _, name := range names {
		cs := stats[name]
		meanDelay := 0.0
		if cs.completed > 0 {
			meanDelay = cs.delay / float64(cs.completed)
		}
		fmt.Printf("%-16s %9d %9d %12.2f %10.2f\n", name, cs.submitted, cs.completed, cs.yield, meanDelay)
	}
}
