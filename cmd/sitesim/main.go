// Command sitesim replays a trace file (from tracegen) through a single
// simulated task-service site and reports the outcome: total yield, yield
// rate, acceptance, delays.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/admission"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/site"
	"repro/internal/workload"
)

func main() {
	var (
		in       = flag.String("trace", "", "trace file from tracegen (required)")
		procs    = flag.Int("procs", 0, "processors (default: trace's spec)")
		policy   = flag.String("policy", "firstprice", "fcfs|srpt|swpt|firstprice|pv|firstreward")
		alpha    = flag.Float64("alpha", 0.3, "alpha for firstreward")
		discount = flag.Float64("discount", 0.01, "discount rate for pv/firstreward and slack quoting")
		preempt  = flag.Bool("preempt", false, "enable preemption")
		restart  = flag.Bool("restart", false, "preemption loses progress")
		slack    = flag.Float64("slack", 0, "slack admission threshold (with -admission)")
		useAdm   = flag.Bool("admission", false, "enable slack-threshold admission control")
		report   = flag.Bool("report", false, "print the per-class distributional report")
		traceOut = flag.String("trace-out", "", "write the scheduling audit log as JSON task-lifecycle events to this file (\"-\" for stderr)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "sitesim: -trace is required")
		flag.Usage()
		os.Exit(2)
	}

	tr, err := workload.ReadFile(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitesim:", err)
		os.Exit(1)
	}

	var pol core.Policy
	switch *policy {
	case "pv":
		pol = core.PresentValue{DiscountRate: *discount}
	case "firstreward":
		pol = core.FirstReward{Alpha: *alpha, DiscountRate: *discount}
	default:
		pol, err = core.ByName(*policy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sitesim:", err)
			os.Exit(2)
		}
	}

	p := tr.Spec.Processors
	if *procs > 0 {
		p = *procs
	}
	cfg := site.Config{
		Processors:        p,
		Policy:            pol,
		Preemptive:        *preempt,
		PreemptionRestart: *restart,
		DiscountRate:      *discount,
	}
	if *useAdm {
		cfg.Admission = admission.SlackThreshold{Threshold: *slack}
	}
	if *traceOut != "" {
		w := os.Stderr
		if *traceOut != "-" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sitesim:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		cfg.Recorder = site.NewObsRecorder(nil, obs.NewTracer(w, "sitesim"), "sitesim")
	}

	tasks := tr.Clone()
	m := site.RunTrace(tasks, cfg)
	fmt.Printf("policy:          %s\n", pol.Name())
	fmt.Printf("processors:      %d\n", p)
	fmt.Printf("submitted:       %d\n", m.Submitted)
	fmt.Printf("accepted:        %d (%.1f%%)\n", m.Accepted, 100*m.AcceptanceRate())
	fmt.Printf("completed:       %d\n", m.Completed)
	fmt.Printf("preemptions:     %d\n", m.Preemptions)
	fmt.Printf("total yield:     %.2f\n", m.TotalYield)
	fmt.Printf("yield rate:      %.4f\n", m.YieldRate())
	fmt.Printf("mean delay:      %.2f\n", m.MeanDelay())
	fmt.Printf("active interval: %.1f\n", m.ActiveInterval())
	if *report {
		fmt.Println()
		analysis.Analyze(tasks).Print(os.Stdout)
		fmt.Printf("gini(yield):     %.3f\n", analysis.GiniYield(tasks))
	}
}
